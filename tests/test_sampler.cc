/**
 * @file
 * Tests for the streaming interval sampler: boundary-exact interval
 * semantics, partial/zero-length final intervals, ring overflow,
 * fleet folding, cross-checks against whole-run results and the
 * thread-count byte-identity of the aw-timeline/3 artifacts.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/sampler.hh"
#include "exp/emit.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "sim/logging.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::analysis;

/** 1 ms interval in ticks, the synthetic tests' grid unit. */
const sim::Tick kIv = sim::fromSec(1e-3);

TimelineConfig
cfgWith(double interval_s, std::size_t capacity = 4096)
{
    TimelineConfig tc;
    tc.intervalSeconds = interval_s;
    tc.capacity = capacity;
    return tc;
}

// ------------------------------------------------ interval semantics

TEST(Sampler, EventExactlyOnBoundaryLandsInNextInterval)
{
    TimelineRecorder rec(cfgWith(1e-3), 1);
    rec.onMeasurementStart(0);
    rec.onComplete(0, 0, kIv, 10.0); // exactly on the first boundary
    rec.onMeasurementEnd(2 * kIv);

    const TimelineSeries &s = rec.series();
    ASSERT_EQ(s.samples.size(), 2u);
    EXPECT_EQ(s.samples[0].t0, 0u);
    EXPECT_EQ(s.samples[0].t1, kIv);
    EXPECT_EQ(s.samples[0].requests, 0u);
    EXPECT_EQ(s.samples[1].requests, 1u);
}

TEST(Sampler, RunShorterThanOneIntervalEmitsOnePartial)
{
    TimelineRecorder rec(cfgWith(1e-3), 1);
    rec.onMeasurementStart(0);
    rec.onComplete(0, 0, kIv / 4, 5.0);
    rec.onMeasurementEnd(kIv / 2);

    const TimelineSeries &s = rec.series();
    EXPECT_EQ(s.emitted, 1u);
    ASSERT_EQ(s.samples.size(), 1u);
    EXPECT_EQ(s.samples[0].t0, 0u);
    EXPECT_EQ(s.samples[0].t1, kIv / 2);
    EXPECT_EQ(s.samples[0].requests, 1u);
    // achievedQps scales by the partial interval's actual length.
    EXPECT_DOUBLE_EQ(s.samples[0].achievedQps(),
                     1.0 / sim::toSec(kIv / 2));
}

TEST(Sampler, EndExactlyOnBoundaryEmitsNoZeroLengthInterval)
{
    TimelineRecorder rec(cfgWith(1e-3), 1);
    rec.onMeasurementStart(0);
    rec.onComplete(0, 0, 100, 5.0);
    rec.onMeasurementEnd(3 * kIv);

    const TimelineSeries &s = rec.series();
    EXPECT_EQ(s.emitted, 3u);
    ASSERT_EQ(s.samples.size(), 3u);
    for (const auto &sample : s.samples)
        EXPECT_GT(sample.t1, sample.t0);
    EXPECT_EQ(s.samples.back().t1, 3 * kIv);
}

TEST(Sampler, WarmupActivityIsExcluded)
{
    TimelineRecorder rec(cfgWith(1e-3), 1);
    // Pre-measurement traffic: levels are tracked, nothing accrues.
    rec.onCorePower(0, 0, 5.0);
    rec.onComplete(0, 0, 10, 3.0);
    rec.onMeasurementStart(7 * kIv); // warmup ended mid-run
    rec.onMeasurementEnd(8 * kIv);

    const TimelineSeries &s = rec.series();
    EXPECT_EQ(s.origin, 7 * kIv);
    ASSERT_EQ(s.samples.size(), 1u);
    EXPECT_EQ(s.samples[0].t0, 7 * kIv);
    EXPECT_EQ(s.samples[0].requests, 0u);
    // The power level set before the window still applies to it.
    EXPECT_NEAR(s.samples[0].powerW, 5.0, 1e-12);
}

TEST(Sampler, RingKeepsNewestAndCountsDropped)
{
    TimelineRecorder rec(cfgWith(1e-3, /*capacity=*/4), 1);
    rec.onMeasurementStart(0);
    rec.onMeasurementEnd(10 * kIv);

    const TimelineSeries &s = rec.series();
    EXPECT_EQ(s.emitted, 10u);
    EXPECT_EQ(s.dropped, 6u);
    ASSERT_EQ(s.samples.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(s.samples[i].index, 6u + i);
        EXPECT_EQ(s.samples[i].t0, (6 + i) * kIv);
    }
}

TEST(Sampler, ResidencyAndEnergyIntegrals)
{
    // Two cores: core 0 sits in C0 at 2 W, core 1 drops to C6 at
    // 0.5 W halfway through the single interval; uncore is 10 W.
    TimelineRecorder rec(cfgWith(1e-3), 2);
    rec.onCorePower(0, 0, 2.0);
    rec.onCorePower(1, 0, 2.0);
    rec.onUncorePower(0, 10.0);
    rec.onMeasurementStart(0);
    rec.onCStateEnter(1, kIv / 2, cstate::CStateId::C6);
    rec.onCorePower(1, kIv / 2, 0.5);
    rec.onMeasurementEnd(kIv);

    const TimelineSeries &s = rec.series();
    ASSERT_EQ(s.samples.size(), 1u);
    const IntervalSample &iv = s.samples[0];
    // Residency over 2 cores: C0 = (1 + 0.5) / 2, C6 = 0.5 / 2.
    EXPECT_NEAR(iv.residency[cstate::index(cstate::CStateId::C0)],
                0.75, 1e-12);
    EXPECT_NEAR(iv.residency[cstate::index(cstate::CStateId::C6)],
                0.25, 1e-12);
    // Power: 10 (uncore) + 2 (core 0) + (2 * 0.5 + 0.5 * 0.5).
    EXPECT_NEAR(iv.powerW, 10.0 + 2.0 + 1.25, 1e-9);
}

TEST(Sampler, PooledP99MatchesNearestRank)
{
    TimelineRecorder rec(cfgWith(1e-3), 1);
    rec.onMeasurementStart(0);
    for (int i = 100; i >= 1; --i) // unsorted on purpose
        rec.onComplete(0, 0, 10 + i, static_cast<double>(i));
    rec.onMeasurementEnd(kIv);

    const TimelineSeries &s = rec.series();
    ASSERT_EQ(s.samples.size(), 1u);
    // Nearest rank: ceil(0.99 * 100) = 99 -> sorted[98] = 99.
    EXPECT_DOUBLE_EQ(s.samples[0].p99Us, 99.0);
    EXPECT_EQ(s.samples[0].requests, 100u);
}

TEST(SamplerDeathTest, RejectsBadConfig)
{
    EXPECT_EXIT(TimelineRecorder(cfgWith(0.0), 1),
                testing::ExitedWithCode(1), "interval");
    EXPECT_EXIT(TimelineRecorder(cfgWith(1e-3, 0), 1),
                testing::ExitedWithCode(1), "capacity");
    EXPECT_EXIT(TimelineRecorder(cfgWith(1e-3), 0),
                testing::ExitedWithCode(1), "core");
    TimelineRecorder rec(cfgWith(1e-3), 1);
    EXPECT_EXIT(rec.series(), testing::ExitedWithCode(1),
                "before the run");
}

// ------------------------------------------------------------- fold

TEST(Sampler, FoldPoolsAcrossServers)
{
    TimelineConfig tc = cfgWith(1e-3);
    tc.retainLatencies = true;

    TimelineRecorder a(tc, 1), b(tc, 3);
    a.onCorePower(0, 0, 1.0);
    a.onMeasurementStart(0);
    for (int i = 1; i <= 50; ++i)
        a.onComplete(0, 0, 10 + i, static_cast<double>(i));
    a.onMeasurementEnd(kIv);

    b.onCorePower(0, 0, 2.0);
    b.onMeasurementStart(0);
    b.onCStateEnter(0, kIv / 2, cstate::CStateId::C6);
    for (int i = 51; i <= 100; ++i)
        b.onComplete(0, 0, 10 + i, static_cast<double>(i));
    b.onMeasurementEnd(kIv);

    const auto folded = foldTimelines({a.series(), b.series()});
    EXPECT_EQ(folded.cores, 4u);
    ASSERT_EQ(folded.samples.size(), 1u);
    const IntervalSample &iv = folded.samples[0];
    EXPECT_EQ(iv.requests, 100u);
    // Pooled p99 over both servers' samples 1..100.
    EXPECT_DOUBLE_EQ(iv.p99Us, 99.0);
    // Residency is core-weighted: server a contributes 1 C0 core,
    // server b 3 cores of which core 0 spends half in C6.
    EXPECT_NEAR(iv.residency[cstate::index(cstate::CStateId::C0)],
                (1.0 + 2.5) / 4.0, 1e-12);
    EXPECT_NEAR(iv.residency[cstate::index(cstate::CStateId::C6)],
                0.5 / 4.0, 1e-12);
    // Power sums across servers.
    EXPECT_NEAR(iv.powerW, 1.0 + 2.0, 1e-9);
}

TEST(SamplerDeathTest, FoldRejectsMismatchedGrids)
{
    TimelineConfig tc = cfgWith(1e-3);
    tc.retainLatencies = true;
    TimelineRecorder a(tc, 1), b(tc, 1);
    a.onMeasurementStart(0);
    a.onMeasurementEnd(kIv);
    b.onMeasurementStart(0);
    b.onMeasurementEnd(2 * kIv);
    EXPECT_EXIT(foldTimelines({a.series(), b.series()}),
                testing::ExitedWithCode(1), "mismatched");
}

// --------------------------------------- cross-check vs run results

TEST(Sampler, SingleIntervalMatchesRunResult)
{
    // One interval spanning the whole measured window must agree
    // with the RunResult aggregates computed independently.
    auto cfg = server::ServerConfig::awBaseline();
    cfg.cores = 4;
    cfg.seed = 3;
    server::ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                          100e3);
    TimelineRecorder rec(cfgWith(0.2), cfg.cores);
    srv.setObserver(&rec);
    const auto r = srv.run(sim::fromSec(0.2), sim::fromSec(0.02));

    const TimelineSeries &s = rec.series();
    ASSERT_EQ(s.samples.size(), 1u);
    const IntervalSample &iv = s.samples[0];
    EXPECT_EQ(iv.requests, r.requests);
    EXPECT_NEAR(iv.achievedQps(), r.achievedQps,
                1e-6 * r.achievedQps);
    EXPECT_NEAR(iv.powerW, r.packagePower, 1e-6 * r.packagePower);
    EXPECT_NEAR(iv.p99Us, r.p99LatencyUs, 1e-9);
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i)
        EXPECT_NEAR(iv.residency[i], r.residency.share[i], 1e-9)
            << i;
}

TEST(Sampler, IntervalsTileTheWindowExactly)
{
    auto cfg = server::ServerConfig::awBaseline();
    cfg.cores = 2;
    cfg.seed = 5;
    server::ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                          50e3);
    TimelineRecorder rec(cfgWith(0.01), cfg.cores);
    srv.setObserver(&rec);
    const auto r = srv.run(sim::fromSec(0.1), sim::fromSec(0.01));

    const TimelineSeries &s = rec.series();
    ASSERT_EQ(s.samples.size(), 10u);
    std::uint64_t requests = 0;
    sim::Tick cursor = s.origin;
    for (const auto &iv : s.samples) {
        EXPECT_EQ(iv.t0, cursor); // gap-free tiling
        cursor = iv.t1;
        requests += iv.requests;
        double share_sum = 0.0;
        for (const double share : iv.residency)
            share_sum += share;
        EXPECT_NEAR(share_sum, 1.0, 1e-9);
    }
    EXPECT_EQ(cursor, s.origin + r.window);
    EXPECT_EQ(requests, r.requests);
}

// -------------------------------------------- artifact determinism

TEST(Sampler, TimelineArtifactsAreThreadCountInvariant)
{
    exp::ExperimentSpec spec;
    spec.name = "tl-identity";
    spec.workloads = {"memcached"};
    spec.configs = {"aw", "c1c6"};
    spec.qps = {80e3, 160e3};
    spec.seconds = 0.05;
    spec.seed = 9;
    spec.timelineIntervalSeconds = 0.01;

    const auto r1 = exp::SweepRunner(1).run(spec);
    const auto r8 = exp::SweepRunner(8).run(spec);
    ASSERT_EQ(r1.points.size(), 4u);
    EXPECT_EQ(exp::toTimelineCsv(r1), exp::toTimelineCsv(r8));
    EXPECT_EQ(exp::toTimelineJson(r1), exp::toTimelineJson(r8));
    // And the regular artifacts are untouched by the sampler.
    exp::ExperimentSpec plain = spec;
    plain.timelineIntervalSeconds = 0.0;
    const auto rp = exp::SweepRunner(2).run(plain);
    EXPECT_EQ(exp::toCsv(rp), exp::toCsv(r1));
    EXPECT_EQ(exp::toJson(rp), exp::toJson(r1));
}

TEST(Sampler, CsvSchemaIsPinned)
{
    TimelineRecorder rec(cfgWith(1e-3), 1);
    rec.onMeasurementStart(0);
    rec.onComplete(0, 0, 100, 5.0);
    rec.onMeasurementEnd(kIv);
    const std::string csv = timelineCsv(rec.series());
    EXPECT_EQ(csv.rfind("# aw-timeline/3\n", 0), 0u);
    EXPECT_NE(csv.find("interval,t0_s,t1_s,requests,achieved_qps,"
                       "power_w,p99_us,res_c0,res_c1,res_c1e,"
                       "res_c6a,res_c6ae,res_c6,freq_ghz,temp_c,"
                       "throttled_share\n"),
              std::string::npos);
    // A lossless series carries no overflow flag line (the pinned
    // goldens depend on that).
    EXPECT_EQ(csv.find("# emitted"), std::string::npos);
}

TEST(Sampler, OverflowedRingIsFlaggedInCsvAndOnStderr)
{
    // Regression: a wrapped interval ring used to render exactly
    // like a complete one -- only the JSON counters knew. Overflow
    // a capacity-4 ring and require both the artifact comment line
    // and the stderr warning.
    TimelineRecorder rec(cfgWith(1e-3, /*capacity=*/4), 1);
    rec.onMeasurementStart(0);
    rec.onMeasurementEnd(10 * kIv);
    ASSERT_EQ(rec.series().dropped, 6u);

    const bool was_quiet = sim::quiet();
    sim::setQuiet(false);
    testing::internal::CaptureStderr();
    const std::string csv = timelineCsv(rec.series());
    const std::string err = testing::internal::GetCapturedStderr();
    sim::setQuiet(was_quiet);

    EXPECT_NE(csv.find("# emitted 10 dropped 6 (ring overflow"),
              std::string::npos)
        << csv;
    EXPECT_NE(err.find("interval ring overflowed"),
              std::string::npos)
        << err;
    // The flag is a comment: the column schema stays identical.
    EXPECT_NE(csv.find("interval,t0_s,t1_s,requests"),
              std::string::npos);
    // And the JSON rendering carries the counters for machines.
    const std::string json =
        timelineJson(rec.series(), "overflow-test");
    EXPECT_NE(json.find("\"intervals_emitted\": 10"),
              std::string::npos);
    EXPECT_NE(json.find("\"intervals_dropped\": 6"),
              std::string::npos);
}

TEST(Sampler, SweepTimelineOverflowIsFlaggedPerPoint)
{
    // End to end through the sweep emitter: a sampling interval
    // fine enough to wrap the default 4096-interval ring must
    // surface per-point overflow comments in the aw-timeline/3
    // sweep CSV (and warn), not silently truncate the day.
    exp::ExperimentSpec spec;
    spec.name = "overflow";
    spec.workloads = {"memcached"};
    spec.configs = {"aw"};
    spec.qps = {20e3};
    spec.seconds = 0.45;
    spec.seed = 1;
    spec.timelineIntervalSeconds = 1e-4; // 4500 intervals > 4096
    const auto result = exp::SweepRunner(1).run(spec);
    ASSERT_EQ(result.points.size(), 1u);
    ASSERT_TRUE(result.points[0].timeline.has_value());
    ASSERT_GT(result.points[0].timeline->dropped, 0u);

    const bool was_quiet = sim::quiet();
    sim::setQuiet(false);
    testing::internal::CaptureStderr();
    const std::string csv = exp::toTimelineCsv(result);
    const std::string err = testing::internal::GetCapturedStderr();
    sim::setQuiet(was_quiet);

    EXPECT_NE(csv.find("# point 0 emitted "), std::string::npos)
        << csv.substr(0, 400);
    EXPECT_NE(csv.find("(ring overflow"), std::string::npos);
    EXPECT_NE(err.find("interval ring overflowed"),
              std::string::npos)
        << err;
}

} // namespace
