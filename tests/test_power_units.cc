/**
 * @file
 * Unit tests for power units and interval arithmetic.
 */

#include <gtest/gtest.h>

#include "power/units.hh"
#include "power/tech.hh"

namespace {

using namespace aw::power;

TEST(Units, MilliwattConversions)
{
    EXPECT_DOUBLE_EQ(milliwatts(250.0), 0.25);
    EXPECT_DOUBLE_EQ(asMilliwatts(0.25), 250.0);
    EXPECT_DOUBLE_EQ(microjoules(3.0), 3e-6);
}

TEST(Interval, PointAndAccessors)
{
    const auto p = Interval::point(5.0);
    EXPECT_DOUBLE_EQ(p.lo, 5.0);
    EXPECT_DOUBLE_EQ(p.hi, 5.0);
    EXPECT_DOUBLE_EQ(p.mid(), 5.0);
    EXPECT_DOUBLE_EQ(p.width(), 0.0);
}

TEST(Interval, Addition)
{
    const Interval a(1.0, 2.0), b(10.0, 20.0);
    const auto c = a + b;
    EXPECT_DOUBLE_EQ(c.lo, 11.0);
    EXPECT_DOUBLE_EQ(c.hi, 22.0);
}

TEST(Interval, ScalarMultiply)
{
    const Interval a(1.0, 2.0);
    const auto b = a * 3.0;
    EXPECT_DOUBLE_EQ(b.lo, 3.0);
    EXPECT_DOUBLE_EQ(b.hi, 6.0);
}

TEST(Interval, NegativeScalarSwapsBounds)
{
    const Interval a(1.0, 2.0);
    const auto b = a * -1.0;
    EXPECT_DOUBLE_EQ(b.lo, -2.0);
    EXPECT_DOUBLE_EQ(b.hi, -1.0);
    EXPECT_TRUE(b.valid());
}

TEST(Interval, IntervalProduct)
{
    const Interval eff(0.03, 0.05);
    const auto r = eff * Interval::point(1.0);
    EXPECT_DOUBLE_EQ(r.lo, 0.03);
    EXPECT_DOUBLE_EQ(r.hi, 0.05);
}

TEST(Interval, Contains)
{
    const Interval a(1.0, 2.0);
    EXPECT_TRUE(a.contains(1.0));
    EXPECT_TRUE(a.contains(1.5));
    EXPECT_TRUE(a.contains(2.0));
    EXPECT_FALSE(a.contains(2.1));
}

TEST(Interval, CompoundAdd)
{
    Interval total;
    total += Interval(1.0, 2.0);
    total += Interval(0.5, 0.5);
    EXPECT_DOUBLE_EQ(total.lo, 1.5);
    EXPECT_DOUBLE_EQ(total.hi, 2.5);
}

TEST(Format, MilliwattRange)
{
    EXPECT_EQ(formatMilliwatts(Interval(0.030, 0.050)), "30-50 mW");
    EXPECT_EQ(formatMilliwatts(Interval::point(0.007)), "7 mW");
    EXPECT_EQ(formatMilliwatts(Interval(0.0361, 0.0412), 1),
              "36.1-41.2 mW");
}

TEST(Format, PercentRange)
{
    EXPECT_EQ(formatPercent(Interval(0.02, 0.06)), "2-6%");
    EXPECT_EQ(formatPercent(Interval::point(0.7)), "70%");
}

TEST(Tech, PaperScalingFactor)
{
    const auto s = LeakageScaling::paper22To14();
    EXPECT_DOUBLE_EQ(s.alpha(), 0.7);
    EXPECT_DOUBLE_EQ(s.beta(), 1.0);
    EXPECT_DOUBLE_EQ(s.factor(), 0.7);
    EXPECT_DOUBLE_EQ(s.scale(1.0), 0.7);
}

TEST(Tech, BetweenNodes)
{
    const auto s = LeakageScaling::between(TechnologyNode::xeon22(),
                                           TechnologyNode::skylake14());
    EXPECT_NEAR(s.alpha(), 14.0 / 22.0, 1e-12);
}

TEST(Tech, VoltageScalingMultiplies)
{
    const LeakageScaling s(0.7, 0.8);
    EXPECT_DOUBLE_EQ(s.factor(), 0.56);
}

TEST(Tech, SramCapacityScaling)
{
    // 2.5 MB reference at some power; 1.1 MB target scales linearly.
    const Watts ref = 0.28;
    const Watts scaled = scaleSramLeakageByCapacity(
        ref, 2.5 * 1024 * 1024, 1.1 * 1024 * 1024);
    EXPECT_NEAR(scaled, ref * 1.1 / 2.5, 1e-12);
}

TEST(Tech, IntervalScaling)
{
    const auto s = LeakageScaling::paper22To14();
    const auto r = s.scale(Interval(1.0, 2.0));
    EXPECT_DOUBLE_EQ(r.lo, 0.7);
    EXPECT_DOUBLE_EQ(r.hi, 1.4);
}

} // namespace
