/**
 * @file
 * Unit tests for the transition latency engine: the Table 1
 * envelopes must fall out of the underlying models, and the
 * hardware-only C6A latency must beat C6 by >=900x.
 */

#include <gtest/gtest.h>

#include "core/aw_core.hh"
#include "cstate/transition.hh"
#include "uarch/cache.hh"
#include "uarch/context.hh"

namespace {

using namespace aw;
using namespace aw::cstate;
using namespace aw::sim;

class TransitionTest : public ::testing::Test
{
  protected:
    TransitionTest()
        : caches(uarch::PrivateCaches::skylakeServer()),
          engine(caches, context, model.controller().awLatencies())
    {
    }

    core::AwCoreModel model;
    uarch::PrivateCaches caches;
    uarch::CoreContext context;
    TransitionEngine engine;
};

TEST_F(TransitionTest, C1EnvelopeIsTwoMicroseconds)
{
    const auto lat = engine.latency(CStateId::C1, Frequency::ghz(2.2));
    EXPECT_NEAR(toUs(lat.total()), 2.0, 0.05);
}

TEST_F(TransitionTest, C1EEnvelopeIsTenMicroseconds)
{
    const auto lat =
        engine.latency(CStateId::C1E, Frequency::ghz(2.2));
    EXPECT_NEAR(toUs(lat.total()), 10.0, 0.05);
}

TEST_F(TransitionTest, C6AEnvelopeMatchesC1PlusHardware)
{
    const auto lat =
        engine.latency(CStateId::C6A, Frequency::ghz(2.2));
    // Same 2 us software envelope plus the <100 ns hardware flow.
    EXPECT_NEAR(toUs(lat.total()), 2.1, 0.05);
}

TEST_F(TransitionTest, C6EnvelopeAtPaperReferencePoint)
{
    // Table 1's 133 us envelope holds at the reference conditions:
    // 800 MHz, 50% dirty caches.
    caches.setDirtyFraction(0.5);
    const auto lat =
        engine.latency(CStateId::C6, Frequency::mhz(800.0));
    EXPECT_NEAR(toUs(lat.total()), 133.0, 3.0);
}

TEST_F(TransitionTest, C6EntryBreakdownMatchesSection3)
{
    caches.setDirtyFraction(0.5);
    const auto b = engine.c6EntryBreakdown(Frequency::mhz(800.0));
    EXPECT_NEAR(toUs(b.flush), 75.0, 0.5);
    EXPECT_NEAR(toUs(b.contextSave), 9.0, 0.5);
    EXPECT_NEAR(toUs(b.total()), 87.0, 1.0);
}

TEST_F(TransitionTest, C6ExitBreakdownMatchesSection3)
{
    const auto b = engine.c6ExitBreakdown(Frequency::mhz(800.0));
    EXPECT_NEAR(toUs(b.hwWake), 10.0, 0.1);
    EXPECT_NEAR(toUs(b.total()), 30.0, 3.0);
}

TEST_F(TransitionTest, C6AHardwareIsUnderHundredNanoseconds)
{
    const auto hw =
        engine.hardwareLatency(CStateId::C6A, Frequency::ghz(2.2));
    EXPECT_LT(hw.entry, fromNs(20.0));
    EXPECT_LT(hw.exit, fromNs(80.0));
    EXPECT_LT(hw.total(), fromNs(100.0));
}

TEST_F(TransitionTest, NineHundredTimesFasterThanC6)
{
    caches.setDirtyFraction(0.5);
    const auto c6 =
        engine.latency(CStateId::C6, Frequency::mhz(800.0));
    const auto c6a =
        engine.hardwareLatency(CStateId::C6A, Frequency::ghz(2.2));
    const double speedup = static_cast<double>(c6.total()) /
                           static_cast<double>(c6a.total());
    EXPECT_GE(speedup, 900.0);
}

TEST_F(TransitionTest, C6EntryDependsOnDirtyFraction)
{
    caches.setDirtyFraction(0.0);
    const auto clean =
        engine.latency(CStateId::C6, Frequency::ghz(2.2));
    caches.setDirtyFraction(1.0);
    const auto dirty =
        engine.latency(CStateId::C6, Frequency::ghz(2.2));
    EXPECT_GT(dirty.entry, clean.entry);
    EXPECT_EQ(dirty.exit, clean.exit);
}

TEST_F(TransitionTest, C1HardwareIsNanoseconds)
{
    const auto hw =
        engine.hardwareLatency(CStateId::C1, Frequency::ghz(2.2));
    EXPECT_LT(hw.total(), fromNs(10.0));
}

TEST_F(TransitionTest, C0HasNoLatency)
{
    const auto lat = engine.latency(CStateId::C0, Frequency::ghz(2.2));
    EXPECT_EQ(lat.total(), Tick(0));
}

TEST_F(TransitionTest, C6AEMatchesC6AHardware)
{
    const auto a =
        engine.hardwareLatency(CStateId::C6A, Frequency::ghz(2.2));
    const auto ae =
        engine.hardwareLatency(CStateId::C6AE, Frequency::ghz(2.2));
    EXPECT_EQ(a.total(), ae.total());
    // But the software envelope differs (DVFS ramp).
    EXPECT_GT(engine.latency(CStateId::C6AE, Frequency::ghz(2.2))
                  .total(),
              engine.latency(CStateId::C6A, Frequency::ghz(2.2))
                  .total());
}

TEST(TransitionNoAw, PanicsOnAwStateWithoutLatencies)
{
    const auto caches = uarch::PrivateCaches::skylakeServer();
    const uarch::CoreContext context;
    const TransitionEngine engine(caches, context);
    EXPECT_FALSE(engine.hasAwLatencies());
    EXPECT_DEATH(engine.latency(CStateId::C6A, Frequency::ghz(2.2)),
                 "without AW");
}

TEST(TransitionNoAw, LatenciesCanBeInstalledLater)
{
    const auto caches = uarch::PrivateCaches::skylakeServer();
    const uarch::CoreContext context;
    TransitionEngine engine(caches, context);
    core::AwCoreModel model;
    engine.setAwLatencies(model.controller().awLatencies());
    EXPECT_TRUE(engine.hasAwLatencies());
    EXPECT_GT(engine.latency(CStateId::C6A, Frequency::ghz(2.2))
                  .total(),
              Tick(0));
}

/** Property: exit latency never exceeds entry+exit envelope, and
 *  entry/exit are positive for all idle states at all plausible
 *  frequencies. */
class TransitionSweep
    : public ::testing::TestWithParam<std::tuple<CStateId, double>>
{
};

TEST_P(TransitionSweep, LatenciesArePositiveAndBounded)
{
    const auto [state, ghz] = GetParam();
    core::AwCoreModel model;
    auto caches = uarch::PrivateCaches::skylakeServer();
    caches.setDirtyFraction(0.5);
    const uarch::CoreContext context;
    const TransitionEngine engine(caches, context,
                                  model.controller().awLatencies());
    const auto lat = engine.latency(state, Frequency::ghz(ghz));
    EXPECT_GT(lat.entry, Tick(0));
    EXPECT_GT(lat.exit, Tick(0));
    // Nothing takes longer than 200 us even at the slowest clock.
    EXPECT_LT(lat.total(), fromUs(200.0));
    // Hardware latency is always <= full latency.
    const auto hw = engine.hardwareLatency(state, Frequency::ghz(ghz));
    EXPECT_LE(hw.entry, lat.entry);
    EXPECT_LE(hw.exit, lat.exit);
}

INSTANTIATE_TEST_SUITE_P(
    AllStatesAndClocks, TransitionSweep,
    ::testing::Combine(::testing::Values(CStateId::C1, CStateId::C1E,
                                         CStateId::C6A,
                                         CStateId::C6AE,
                                         CStateId::C6),
                       ::testing::Values(0.8, 1.2, 2.2, 3.0)));

} // namespace
