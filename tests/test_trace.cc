/**
 * @file
 * Unit tests for arrival-trace record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/trace.hh"

namespace {

using namespace aw::workload;
using namespace aw::sim;

TEST(Trace, RecordCapturesGaps)
{
    PoissonArrivals src(1000.0);
    Rng rng(5);
    const auto trace = ArrivalTrace::record(src, rng, 100);
    EXPECT_EQ(trace.size(), 100u);
    EXPECT_GT(trace.duration(), Tick(0));
}

TEST(Trace, MeanRateTracksSource)
{
    PoissonArrivals src(1000.0);
    Rng rng(5);
    const auto trace = ArrivalTrace::record(src, rng, 50000);
    EXPECT_NEAR(trace.meanRatePerSec(), 1000.0, 30.0);
}

TEST(Trace, ReplayIsBitIdentical)
{
    PoissonArrivals src(1000.0);
    Rng rng(5);
    const auto trace = ArrivalTrace::record(src, rng, 1000);

    TraceArrivals a(trace), b(trace);
    Rng unused(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextGap(unused), b.nextGap(unused));
}

TEST(Trace, LoopWrapsAround)
{
    ArrivalTrace trace({10, 20, 30});
    TraceArrivals replay(trace, true);
    Rng unused(1);
    EXPECT_EQ(replay.nextGap(unused), Tick(10));
    EXPECT_EQ(replay.nextGap(unused), Tick(20));
    EXPECT_EQ(replay.nextGap(unused), Tick(30));
    EXPECT_EQ(replay.nextGap(unused), Tick(10)); // wrapped
    EXPECT_FALSE(replay.exhausted());
}

TEST(Trace, NonLoopingEnds)
{
    ArrivalTrace trace({10, 20});
    TraceArrivals replay(trace, false);
    Rng unused(1);
    replay.nextGap(unused);
    replay.nextGap(unused);
    EXPECT_TRUE(replay.exhausted());
    EXPECT_EQ(replay.nextGap(unused), kMaxTick);
}

TEST(Trace, RatePerSecFromTrace)
{
    // Two arrivals over 1 ms => 2000/s.
    ArrivalTrace trace({fromUs(500.0), fromUs(500.0)});
    TraceArrivals replay(trace);
    EXPECT_NEAR(replay.ratePerSec(), 2000.0, 1e-6);
}

TEST(Trace, AppendGrows)
{
    ArrivalTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.append(fromUs(1.0));
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.duration(), fromUs(1.0));
}

TEST(TraceDeathTest, EmptyReplayPanics)
{
    EXPECT_DEATH(TraceArrivals(ArrivalTrace{}), "empty");
}

TEST(TraceDeathTest, ZeroDurationLoopIsFatal)
{
    // Looping a trace that spans no time would replay arrivals
    // forever at one tick; non-looping replay is still fine.
    EXPECT_EXIT(TraceArrivals(ArrivalTrace({0, 0}), true),
                ::testing::ExitedWithCode(1), "zero-duration");
    TraceArrivals once(ArrivalTrace({0, 0}), false);
    Rng unused(1);
    EXPECT_EQ(once.nextGap(unused), Tick(0));
}

TEST(Trace, EmptyTraceStatsAreZero)
{
    ArrivalTrace trace;
    EXPECT_EQ(trace.duration(), Tick(0));
    EXPECT_DOUBLE_EQ(trace.meanRatePerSec(), 0.0);
}

/** RAII temp file helper for the CSV tests. */
class TempTraceFile
{
  public:
    explicit TempTraceFile(const std::string &content)
        : _path(std::string(::testing::TempDir()) +
                "aw_trace_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(
                    this)) +
                ".csv")
    {
        std::ofstream out(_path);
        out << content;
    }

    ~TempTraceFile() { std::remove(_path.c_str()); }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

TEST(TraceCsv, LoadsGapsInMicroseconds)
{
    TempTraceFile file("# captured gaps\n"
                       "100\n"
                       "250.5\n"
                       "0.5\n");
    const auto trace = ArrivalTrace::loadCsv(file.path());
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.gaps()[0], fromUs(100.0));
    EXPECT_EQ(trace.gaps()[1], fromUs(250.5));
    EXPECT_EQ(trace.gaps()[2], fromUs(0.5));
}

TEST(TraceCsv, AcceptsCommasWhitespaceAndComments)
{
    TempTraceFile file("10, 20,30\n"
                       "\n"
                       "40 50 # trailing comment\n");
    const auto trace = ArrivalTrace::loadCsv(file.path());
    ASSERT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace.gaps()[2], fromUs(30.0));
    EXPECT_EQ(trace.gaps()[4], fromUs(50.0));
}

TEST(TraceCsv, SaveLoadRoundTrips)
{
    // Includes tick values that need more than the default 6
    // significant digits -- replay must stay bit-identical.
    ArrivalTrace original({fromUs(10.0), fromUs(0.25),
                           fromUs(1000.0), Tick(123456789012),
                           Tick(987654321)});
    TempTraceFile file("");
    original.saveCsv(file.path());
    const auto loaded = ArrivalTrace::loadCsv(file.path());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_EQ(loaded.gaps()[i], original.gaps()[i]);
}

TEST(TraceCsv, LoadedTraceDrivesReplay)
{
    TempTraceFile file("100\n200\n");
    TraceArrivals replay(ArrivalTrace::loadCsv(file.path()), false);
    Rng unused(1);
    EXPECT_EQ(replay.nextGap(unused), fromUs(100.0));
    EXPECT_EQ(replay.nextGap(unused), fromUs(200.0));
    EXPECT_TRUE(replay.exhausted());
}

TEST(TraceCsvDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(ArrivalTrace::loadCsv("/nonexistent/trace.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceCsvDeathTest, BadTokenIsFatal)
{
    TempTraceFile file("10\nbogus\n");
    EXPECT_EXIT(ArrivalTrace::loadCsv(file.path()),
                ::testing::ExitedWithCode(1), "bad gap");
}

TEST(TraceCsvDeathTest, NonFiniteGapIsFatal)
{
    TempTraceFile file("10\nnan\n");
    EXPECT_EXIT(ArrivalTrace::loadCsv(file.path()),
                ::testing::ExitedWithCode(1), "bad gap");
    TempTraceFile inf_file("inf\n");
    EXPECT_EXIT(ArrivalTrace::loadCsv(inf_file.path()),
                ::testing::ExitedWithCode(1), "bad gap");
}

TEST(TraceCsvDeathTest, NegativeGapIsFatal)
{
    TempTraceFile file("10\n-5\n");
    EXPECT_EXIT(ArrivalTrace::loadCsv(file.path()),
                ::testing::ExitedWithCode(1), "negative");
}

TEST(TraceCsvDeathTest, EmptyFileIsFatal)
{
    TempTraceFile file("# nothing but comments\n");
    EXPECT_EXIT(ArrivalTrace::loadCsv(file.path()),
                ::testing::ExitedWithCode(1), "no gaps");
}

} // namespace
