/**
 * @file
 * Unit tests for arrival-trace record/replay.
 */

#include <gtest/gtest.h>

#include "workload/trace.hh"

namespace {

using namespace aw::workload;
using namespace aw::sim;

TEST(Trace, RecordCapturesGaps)
{
    PoissonArrivals src(1000.0);
    Rng rng(5);
    const auto trace = ArrivalTrace::record(src, rng, 100);
    EXPECT_EQ(trace.size(), 100u);
    EXPECT_GT(trace.duration(), Tick(0));
}

TEST(Trace, MeanRateTracksSource)
{
    PoissonArrivals src(1000.0);
    Rng rng(5);
    const auto trace = ArrivalTrace::record(src, rng, 50000);
    EXPECT_NEAR(trace.meanRatePerSec(), 1000.0, 30.0);
}

TEST(Trace, ReplayIsBitIdentical)
{
    PoissonArrivals src(1000.0);
    Rng rng(5);
    const auto trace = ArrivalTrace::record(src, rng, 1000);

    TraceArrivals a(trace), b(trace);
    Rng unused(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextGap(unused), b.nextGap(unused));
}

TEST(Trace, LoopWrapsAround)
{
    ArrivalTrace trace({10, 20, 30});
    TraceArrivals replay(trace, true);
    Rng unused(1);
    EXPECT_EQ(replay.nextGap(unused), Tick(10));
    EXPECT_EQ(replay.nextGap(unused), Tick(20));
    EXPECT_EQ(replay.nextGap(unused), Tick(30));
    EXPECT_EQ(replay.nextGap(unused), Tick(10)); // wrapped
    EXPECT_FALSE(replay.exhausted());
}

TEST(Trace, NonLoopingEnds)
{
    ArrivalTrace trace({10, 20});
    TraceArrivals replay(trace, false);
    Rng unused(1);
    replay.nextGap(unused);
    replay.nextGap(unused);
    EXPECT_TRUE(replay.exhausted());
    EXPECT_EQ(replay.nextGap(unused), kMaxTick);
}

TEST(Trace, RatePerSecFromTrace)
{
    // Two arrivals over 1 ms => 2000/s.
    ArrivalTrace trace({fromUs(500.0), fromUs(500.0)});
    TraceArrivals replay(trace);
    EXPECT_NEAR(replay.ratePerSec(), 2000.0, 1e-6);
}

TEST(Trace, AppendGrows)
{
    ArrivalTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.append(fromUs(1.0));
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.duration(), fromUs(1.0));
}

TEST(TraceDeathTest, EmptyReplayPanics)
{
    EXPECT_DEATH(TraceArrivals(ArrivalTrace{}), "empty");
}

TEST(Trace, EmptyTraceStatsAreZero)
{
    ArrivalTrace trace;
    EXPECT_EQ(trace.duration(), Tick(0));
    EXPECT_DOUBLE_EQ(trace.meanRatePerSec(), 0.0);
}

} // namespace
