/**
 * @file
 * Unit tests for sim/types.hh: tick conversions and Frequency.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace {

using namespace aw::sim;

TEST(TimeConversion, NsRoundTrip)
{
    EXPECT_EQ(fromNs(1.0), kTicksPerNs);
    EXPECT_DOUBLE_EQ(toNs(fromNs(123.0)), 123.0);
}

TEST(TimeConversion, UsRoundTrip)
{
    EXPECT_EQ(fromUs(1.0), kTicksPerUs);
    EXPECT_DOUBLE_EQ(toUs(fromUs(75.0)), 75.0);
}

TEST(TimeConversion, MsAndSeconds)
{
    EXPECT_EQ(fromMs(1.0), kTicksPerMs);
    EXPECT_EQ(fromSec(1.0), kTicksPerSec);
    EXPECT_DOUBLE_EQ(toSec(kTicksPerSec), 1.0);
}

TEST(TimeConversion, SubUnitRounding)
{
    // 0.5 ns rounds to 500 ps exactly.
    EXPECT_EQ(fromNs(0.5), Tick(500));
    // Nearest rounding, not truncation.
    EXPECT_EQ(fromNs(0.0004), Tick(0));
    EXPECT_EQ(fromNs(0.0006), Tick(1));
}

TEST(Frequency, PeriodOfCommonClocks)
{
    EXPECT_EQ(Frequency::mhz(500.0).period(), Tick(2000));
    EXPECT_EQ(Frequency::ghz(1.0).period(), Tick(1000));
    EXPECT_EQ(Frequency::ghz(2.0).period(), Tick(500));
    EXPECT_EQ(Frequency::ghz(2.5).period(), Tick(400));
}

TEST(Frequency, NonDividingClockRoundsToNearest)
{
    // 2.2 GHz -> 454.54.. ps -> 455 ps.
    EXPECT_EQ(Frequency::ghz(2.2).period(), Tick(455));
    // 3 GHz -> 333.33 ps -> 333 ps.
    EXPECT_EQ(Frequency::ghz(3.0).period(), Tick(333));
}

TEST(Frequency, Cycles)
{
    const auto pma = Frequency::mhz(500.0);
    EXPECT_EQ(pma.cycles(9), Tick(18000)); // 9 cycles = 18 ns
    EXPECT_EQ(pma.cycles(0), Tick(0));
}

TEST(Frequency, Accessors)
{
    const auto f = Frequency::ghz(2.2);
    EXPECT_DOUBLE_EQ(f.gigahertz(), 2.2);
    EXPECT_DOUBLE_EQ(f.megahertz(), 2200.0);
    EXPECT_TRUE(f.valid());
    EXPECT_FALSE(Frequency().valid());
}

TEST(Frequency, Comparison)
{
    EXPECT_LT(Frequency::ghz(0.8), Frequency::ghz(2.2));
    EXPECT_EQ(Frequency::mhz(2200.0), Frequency::ghz(2.2));
}

} // namespace
