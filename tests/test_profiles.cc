/**
 * @file
 * Unit tests for the workload profiles.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/profiles.hh"

namespace {

using namespace aw::workload;
using namespace aw::sim;

TEST(Profiles, MemcachedShape)
{
    const auto p = WorkloadProfile::memcached();
    EXPECT_EQ(p.name(), "memcached");
    EXPECT_EQ(p.arrivalKind(), ArrivalKind::Poisson);
    // Microsecond-scale service, Fig 8's seven rate levels.
    EXPECT_LT(toUs(p.service().meanServiceTime()), 20.0);
    EXPECT_EQ(p.rateLevels().size(), 7u);
    EXPECT_DOUBLE_EQ(p.rateLevels().front(), 10e3);
    EXPECT_DOUBLE_EQ(p.rateLevels().back(), 500e3);
}

TEST(Profiles, MysqlShape)
{
    const auto p = WorkloadProfile::mysql();
    // Sub-millisecond OLTP queries, much longer than the KV store;
    // three rate levels.
    EXPECT_GT(toUs(p.service().meanServiceTime()), 100.0);
    EXPECT_EQ(p.rateLevels().size(), 3u);
}

TEST(Profiles, KafkaIsBursty)
{
    const auto p = WorkloadProfile::kafka();
    EXPECT_EQ(p.arrivalKind(), ArrivalKind::Bursty);
    EXPECT_EQ(p.rateLevels().size(), 2u);
}

TEST(Profiles, MakeArrivalsHonorsKindAndRate)
{
    const auto mc = WorkloadProfile::memcached();
    auto poisson = mc.makeArrivals(5000.0);
    EXPECT_NEAR(poisson->ratePerSec(), 5000.0, 1e-9);

    const auto kafka = WorkloadProfile::kafka();
    auto bursty = kafka.makeArrivals(300.0);
    EXPECT_NEAR(bursty->ratePerSec(), 300.0, 1.0);
}

TEST(Profiles, BurstyGapsAreBurstier)
{
    const auto kafka = WorkloadProfile::kafka();
    auto bursty = kafka.makeArrivals(1000.0);
    auto poisson =
        WorkloadProfile::memcached().makeArrivals(1000.0);
    Rng rng_a(1), rng_b(1);
    auto cv = [](ArrivalProcess &arr, Rng &rng) {
        double sum = 0.0, sumsq = 0.0;
        const int n = 100000;
        for (int i = 0; i < n; ++i) {
            const double g = toSec(arr.nextGap(rng));
            sum += g;
            sumsq += g * g;
        }
        const double mean = sum / n;
        return std::sqrt(sumsq / n - mean * mean) / mean;
    };
    EXPECT_GT(cv(*bursty, rng_a), cv(*poisson, rng_b));
}

TEST(Profiles, ValidationSuiteHasFourWorkloads)
{
    const auto suite = WorkloadProfile::validationSuite();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name(), "specpower");
    EXPECT_EQ(suite[1].name(), "nginx");
    EXPECT_EQ(suite[2].name(), "spark");
    EXPECT_EQ(suite[3].name(), "hive");
}

TEST(Profiles, WriteFractionsAreValid)
{
    for (const auto &p : {WorkloadProfile::memcached(),
                          WorkloadProfile::mysql(),
                          WorkloadProfile::kafka()}) {
        EXPECT_GE(p.writeFraction(), 0.0) << p.name();
        EXPECT_LE(p.writeFraction(), 1.0) << p.name();
    }
}

TEST(Profiles, ComputeSharesAreModerate)
{
    // Every service model splits between compute and memory; none
    // is fully compute-bound (these are data-serving workloads).
    for (const auto &p : {WorkloadProfile::memcached(),
                          WorkloadProfile::mysql(),
                          WorkloadProfile::kafka()}) {
        EXPECT_GT(p.service().computeShare(), 0.2) << p.name();
        EXPECT_LE(p.service().computeShare(), 0.8) << p.name();
    }
}

TEST(Profiles, TimescaleOrdering)
{
    // mysql >> kafka >> memcached in per-request work.
    const auto mc = WorkloadProfile::memcached();
    const auto kafka = WorkloadProfile::kafka();
    const auto mysql = WorkloadProfile::mysql();
    EXPECT_LT(mc.service().meanServiceTime(),
              kafka.service().meanServiceTime());
    EXPECT_LT(kafka.service().meanServiceTime(),
              mysql.service().meanServiceTime());
}

} // namespace
