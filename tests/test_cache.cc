/**
 * @file
 * Unit tests for the private cache model and the flush-time model
 * that dominates C6 entry.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

namespace {

using namespace aw::uarch;
using namespace aw::sim;

TEST(CacheGeometry, SkylakeCapacities)
{
    const auto caches = PrivateCaches::skylakeServer();
    EXPECT_EQ(caches.l1i().capacityBytes, 32u * 1024);
    EXPECT_EQ(caches.l1d().capacityBytes, 32u * 1024);
    EXPECT_EQ(caches.l2().capacityBytes, 1024u * 1024);
    // ~1.1 MB total, the figure used for the CCSM power scaling.
    EXPECT_EQ(caches.totalCapacityBytes(), 1088u * 1024);
    EXPECT_EQ(caches.totalLines(), 1088u * 1024 / 64);
}

TEST(FlushModel, CalibrationAnchorReproduced)
{
    // The paper's reference: flushing 50% dirty at 800 MHz takes
    // ~75 us.
    const auto caches = PrivateCaches::skylakeServer();
    const Tick t = caches.flushModel().flushTime(
        caches.totalLines(), 0.5, Frequency::mhz(800.0));
    EXPECT_NEAR(toUs(t), 75.0, 0.1);
}

TEST(FlushModel, MonotonicInDirtyFraction)
{
    const auto caches = PrivateCaches::skylakeServer();
    const auto &fm = caches.flushModel();
    const auto lines = caches.totalLines();
    Tick prev = 0;
    for (double d = 0.0; d <= 1.0; d += 0.1) {
        const Tick t = fm.flushTime(lines, d, Frequency::ghz(2.2));
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(FlushModel, FasterClockFlushesFaster)
{
    const auto caches = PrivateCaches::skylakeServer();
    const auto &fm = caches.flushModel();
    const auto lines = caches.totalLines();
    EXPECT_LT(fm.flushTime(lines, 0.5, Frequency::ghz(2.2)),
              fm.flushTime(lines, 0.5, Frequency::mhz(800.0)));
}

TEST(FlushModel, CleanCacheStillPaysTheScan)
{
    const auto caches = PrivateCaches::skylakeServer();
    const Tick t = caches.flushModel().flushTime(
        caches.totalLines(), 0.0, Frequency::mhz(800.0));
    EXPECT_GT(t, 0u);
    // Scan-only: lines / 800 MHz ~ 21.8 us.
    EXPECT_NEAR(toUs(t), 21.76, 0.1);
}

TEST(FlushModelDeathTest, CalibrateRejectsBadInput)
{
    EXPECT_DEATH(FlushModel::calibrate(0, 0.5, Frequency::ghz(1.0),
                                       fromUs(10.0)),
                 "lines");
    EXPECT_DEATH(FlushModel::calibrate(100, 0.0, Frequency::ghz(1.0),
                                       fromUs(10.0)),
                 "dirty");
}

TEST(PrivateCaches, DirtyFractionTracking)
{
    auto caches = PrivateCaches::skylakeServer();
    EXPECT_DOUBLE_EQ(caches.dirtyFraction(), 0.0);
    caches.setDirtyFraction(0.5);
    EXPECT_DOUBLE_EQ(caches.dirtyFraction(), 0.5);
}

TEST(PrivateCachesDeathTest, DirtyFractionValidated)
{
    auto caches = PrivateCaches::skylakeServer();
    EXPECT_DEATH(caches.setDirtyFraction(1.5), "out of");
    EXPECT_DEATH(caches.setDirtyFraction(-0.1), "out of");
}

TEST(PrivateCaches, TouchMovesTowardWriteMix)
{
    auto caches = PrivateCaches::skylakeServer();
    caches.setDirtyFraction(0.0);
    for (int i = 0; i < 200; ++i)
        caches.touch(1.0);
    EXPECT_GT(caches.dirtyFraction(), 0.99);
    for (int i = 0; i < 200; ++i)
        caches.touch(0.0);
    EXPECT_LT(caches.dirtyFraction(), 0.01);
}

TEST(PrivateCaches, TouchConvergesToWriteFraction)
{
    auto caches = PrivateCaches::skylakeServer();
    caches.setDirtyFraction(0.0);
    for (int i = 0; i < 1000; ++i)
        caches.touch(0.25);
    EXPECT_NEAR(caches.dirtyFraction(), 0.25, 0.01);
}

TEST(PrivateCaches, FlushResetsDirtyAndState)
{
    auto caches = PrivateCaches::skylakeServer();
    caches.setDirtyFraction(0.8);
    caches.flush();
    EXPECT_DOUBLE_EQ(caches.dirtyFraction(), 0.0);
    EXPECT_EQ(caches.state(), CacheDomainState::Flushed);
}

TEST(PrivateCaches, StateTransitions)
{
    auto caches = PrivateCaches::skylakeServer();
    EXPECT_EQ(caches.state(), CacheDomainState::Active);
    caches.setState(CacheDomainState::SleepMode);
    EXPECT_EQ(caches.state(), CacheDomainState::SleepMode);
    caches.setState(CacheDomainState::ClockGated);
    EXPECT_EQ(caches.state(), CacheDomainState::ClockGated);
}

TEST(PrivateCaches, SnoopServiceTime)
{
    const auto caches = PrivateCaches::skylakeServer();
    const auto freq = Frequency::ghz(2.2);
    const Tick miss = caches.snoopServiceTime(freq, false);
    const Tick hit = caches.snoopServiceTime(freq, true);
    EXPECT_EQ(miss, freq.cycles(PrivateCaches::kSnoopTagCycles));
    EXPECT_GT(hit, miss);
    EXPECT_EQ(hit, freq.cycles(PrivateCaches::kSnoopTagCycles +
                               PrivateCaches::kSnoopDataCycles));
}

/** Property: flush time decomposes linearly in dirty fraction. */
class FlushLinearity : public ::testing::TestWithParam<double>
{
};

TEST_P(FlushLinearity, LinearInDirty)
{
    const double d = GetParam();
    const auto caches = PrivateCaches::skylakeServer();
    const auto &fm = caches.flushModel();
    const auto lines = caches.totalLines();
    const auto freq = Frequency::ghz(1.0);
    const double t0 = toUs(fm.flushTime(lines, 0.0, freq));
    const double t1 = toUs(fm.flushTime(lines, 1.0, freq));
    const double td = toUs(fm.flushTime(lines, d, freq));
    EXPECT_NEAR(td, t0 + d * (t1 - t0), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlushLinearity,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

} // namespace
