/**
 * @file
 * Unit tests for the service-demand models and the compute/memory
 * split that drives frequency scalability.
 */

#include <gtest/gtest.h>

#include "workload/service.hh"

namespace {

using namespace aw::workload;
using namespace aw::sim;

TEST(SplitDemand, DurationAtReferenceEqualsTotal)
{
    const auto d =
        splitDemand(fromUs(10.0), 0.5, Frequency::ghz(2.2));
    EXPECT_NEAR(toUs(d.duration(Frequency::ghz(2.2))), 10.0, 0.01);
}

TEST(SplitDemand, OnlyComputePartScalesWithFrequency)
{
    const auto d =
        splitDemand(fromUs(10.0), 0.5, Frequency::ghz(2.0));
    // At 2 GHz: 5 us compute + 5 us fixed. At 4 GHz: 2.5 + 5.
    EXPECT_NEAR(toUs(d.duration(Frequency::ghz(4.0))), 7.5, 0.01);
    // At 1 GHz: 10 + 5.
    EXPECT_NEAR(toUs(d.duration(Frequency::ghz(1.0))), 15.0, 0.01);
}

TEST(SplitDemand, PureComputeFullyScales)
{
    const auto d =
        splitDemand(fromUs(10.0), 1.0, Frequency::ghz(2.0));
    EXPECT_NEAR(toUs(d.duration(Frequency::ghz(4.0))), 5.0, 0.01);
    EXPECT_EQ(d.fixed, Tick(0));
}

TEST(SplitDemand, PureMemoryNeverScales)
{
    const auto d =
        splitDemand(fromUs(10.0), 0.0, Frequency::ghz(2.0));
    EXPECT_NEAR(toUs(d.duration(Frequency::ghz(4.0))), 10.0, 0.01);
    EXPECT_DOUBLE_EQ(d.cycles, 0.0);
}

TEST(FixedService, DeterministicDraws)
{
    FixedService svc(fromUs(5.0), 0.6);
    Rng rng(1);
    const auto a = svc.draw(rng);
    const auto b = svc.draw(rng);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fixed, b.fixed);
    EXPECT_EQ(svc.meanServiceTime(), fromUs(5.0));
    EXPECT_DOUBLE_EQ(svc.computeShare(), 0.6);
}

TEST(LognormalService, SampleMeanTracksTarget)
{
    LognormalService svc(fromUs(9.0), 0.8, 0.5);
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += toUs(svc.draw(rng).duration(Frequency::ghz(2.2)));
    EXPECT_NEAR(sum / n, 9.0, 0.2);
}

TEST(LognormalServiceDeathTest, ValidatesArguments)
{
    EXPECT_DEATH(LognormalService(0, 0.5, 0.5), "mean");
    EXPECT_DEATH(LognormalService(fromUs(1.0), 0.5, 1.5),
                 "compute share");
}

TEST(BimodalService, MeanIsMixture)
{
    BimodalService svc(fromUs(6.0), fromUs(20.0), 0.90, 0.7, 0.5);
    // 0.9*6 + 0.1*20 = 7.4 us.
    EXPECT_NEAR(toUs(svc.meanServiceTime()), 7.4, 0.01);
}

TEST(BimodalService, SampleMeanTracksMixture)
{
    BimodalService svc(fromUs(6.0), fromUs(20.0), 0.90, 0.7, 0.5);
    Rng rng(3);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += toUs(svc.draw(rng).duration(Frequency::ghz(2.2)));
    EXPECT_NEAR(sum / n, 7.4, 0.15);
}

TEST(BimodalServiceDeathTest, ValidatesFraction)
{
    EXPECT_DEATH(
        BimodalService(fromUs(1.0), fromUs(2.0), 1.5, 0.5, 0.5),
        "fraction");
}

/** Property: a 1% frequency drop inflates service time by about
 *  computeShare * 1% -- the paper's frequency-scalability model. */
class ScalabilityProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(ScalabilityProperty, InflationMatchesComputeShare)
{
    const double share = GetParam();
    const auto d = splitDemand(fromUs(100.0), share,
                               Frequency::ghz(2.2));
    const double base = toUs(d.duration(Frequency::ghz(2.2)));
    const double degraded =
        toUs(d.duration(Frequency(2.2e9 * 0.99)));
    const double inflation = degraded / base - 1.0;
    EXPECT_NEAR(inflation, share * (1.0 / 0.99 - 1.0), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shares, ScalabilityProperty,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75,
                                           1.0));

} // namespace
