/**
 * @file
 * Unit tests for the energy meter (the simulated RAPL counter).
 */

#include <gtest/gtest.h>

#include "power/energy_meter.hh"

namespace {

using namespace aw::power;
using namespace aw::sim;

TEST(EnergyMeter, IntegratesConstantPower)
{
    EnergyMeter m;
    m.setPower(0, 2.0);
    EXPECT_NEAR(m.energy(fromSec(3.0)), 6.0, 1e-9);
}

TEST(EnergyMeter, PiecewiseConstant)
{
    EnergyMeter m;
    m.setPower(0, 1.0);
    m.setPower(fromSec(1.0), 4.0);   // 1 J so far
    m.setPower(fromSec(2.0), 0.5);   // + 4 J
    // + 0.5 J over the last second.
    EXPECT_NEAR(m.energy(fromSec(3.0)), 5.5, 1e-9);
}

TEST(EnergyMeter, AveragePower)
{
    EnergyMeter m;
    m.setPower(0, 1.0);
    m.setPower(fromSec(1.0), 3.0);
    EXPECT_NEAR(m.averagePower(fromSec(2.0)), 2.0, 1e-9);
}

TEST(EnergyMeter, AveragePowerWithWindowStart)
{
    EnergyMeter m;
    m.setPower(0, 10.0);
    m.setPower(fromSec(1.0), 2.0);
    m.reset(fromSec(1.0));
    EXPECT_NEAR(m.averagePower(fromSec(3.0), fromSec(1.0)), 2.0,
                1e-9);
}

TEST(EnergyMeter, RepeatedQueriesAreIdempotent)
{
    EnergyMeter m;
    m.setPower(0, 2.0);
    const Joules e1 = m.energy(fromSec(1.0));
    const Joules e2 = m.energy(fromSec(1.0));
    EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(EnergyMeter, ResetKeepsPowerLevel)
{
    EnergyMeter m;
    m.setPower(0, 5.0);
    m.energy(fromSec(1.0));
    m.reset(fromSec(1.0));
    EXPECT_DOUBLE_EQ(m.power(), 5.0);
    EXPECT_NEAR(m.energy(fromSec(2.0)), 5.0, 1e-9);
}

TEST(EnergyMeter, ZeroWindowAverageIsZero)
{
    EnergyMeter m;
    m.setPower(0, 5.0);
    EXPECT_DOUBLE_EQ(m.averagePower(0), 0.0);
}

TEST(EnergyMeter, SamePowerUpdatesAreHarmless)
{
    EnergyMeter m;
    m.setPower(0, 1.5);
    m.setPower(fromSec(0.5), 1.5);
    m.setPower(fromSec(1.0), 1.5);
    EXPECT_NEAR(m.energy(fromSec(2.0)), 3.0, 1e-9);
}

} // namespace
