/**
 * @file
 * Tests for the event-driven legacy C-state flows (Fig 3): the
 * executed flows must take exactly the TransitionEngine's hardware
 * latencies, phase by phase.
 */

#include <gtest/gtest.h>

#include "core/aw_core.hh"
#include "cstate/flows.hh"

namespace {

using namespace aw;
using namespace aw::cstate;
using namespace aw::sim;

class FlowTest : public ::testing::Test
{
  protected:
    FlowTest()
        : caches(uarch::PrivateCaches::skylakeServer()),
          engine(caches, context,
                 model.controller().awLatencies()),
          flows(caches, context, engine)
    {
        caches.setDirtyFraction(0.5);
    }

    core::AwCoreModel model;
    uarch::PrivateCaches caches;
    uarch::CoreContext context;
    TransitionEngine engine;
    LegacyFlowEngine flows;
    Simulator simr;
    const Frequency freq = Frequency::mhz(800.0);
};

TEST_F(FlowTest, C1EntryTimingMatchesEngine)
{
    bool done = false;
    flows.runC1Entry(simr, freq, [&] { done = true; });
    simr.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(flows.phase(), LegacyPhase::C1Resident);
    EXPECT_EQ(simr.now(),
              engine.hardwareLatency(CStateId::C1, freq).entry);
    EXPECT_EQ(caches.state(), uarch::CacheDomainState::ClockGated);
}

TEST_F(FlowTest, C1RoundTrip)
{
    flows.runC1Entry(simr, freq, nullptr);
    simr.run();
    flows.runC1Exit(simr, freq, nullptr);
    simr.run();
    EXPECT_EQ(flows.phase(), LegacyPhase::C0);
    EXPECT_EQ(simr.now(),
              engine.hardwareLatency(CStateId::C1, freq).total());
    EXPECT_EQ(caches.state(), uarch::CacheDomainState::Active);
}

TEST_F(FlowTest, C1SnoopServeReturnsToResidency)
{
    flows.runC1Entry(simr, freq, nullptr);
    simr.run();
    bool served = false;
    flows.runC1Snoop(simr, freq, fromNs(10.0),
                     [&] { served = true; });
    simr.run();
    ASSERT_TRUE(served);
    EXPECT_EQ(flows.phase(), LegacyPhase::C1Resident);
}

TEST_F(FlowTest, C6EntryPhaseSequenceAndTiming)
{
    bool done = false;
    flows.runC6Entry(simr, freq, [&] { done = true; });
    simr.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(flows.phase(), LegacyPhase::C6Resident);

    // The trace must walk Fig 3b's entry order.
    const auto &trace = flows.trace();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[1].phase, LegacyPhase::C6SaveContext);
    EXPECT_EQ(trace[2].phase, LegacyPhase::C6FlushCaches);
    EXPECT_EQ(trace[3].phase, LegacyPhase::C6GateAndOff);

    // ~87 us at the paper's reference point: the flush timing must
    // be captured before the flush zeroes the dirty fraction.
    EXPECT_NEAR(toUs(simr.now()), 87.0, 1.0);
    EXPECT_DOUBLE_EQ(caches.dirtyFraction(), 0.0);
    EXPECT_EQ(caches.state(), uarch::CacheDomainState::Flushed);
}

TEST_F(FlowTest, C6ExitTimingMatchesBreakdown)
{
    flows.runC6Entry(simr, freq, nullptr);
    simr.run();
    const Tick entered = simr.now();
    flows.runC6Exit(simr, freq, nullptr);
    simr.run();
    EXPECT_EQ(flows.phase(), LegacyPhase::C0);
    EXPECT_NEAR(toUs(simr.now() - entered), 30.0, 3.0);
    EXPECT_EQ(caches.state(), uarch::CacheDomainState::Active);
}

TEST_F(FlowTest, C6RoundTripIsThreeOrdersSlowerThanC6a)
{
    flows.runC6Entry(simr, freq, nullptr);
    simr.run();
    flows.runC6Exit(simr, freq, nullptr);
    simr.run();
    const double legacy_ns = toNs(simr.now());
    const double aw_ns =
        toNs(model.controller().roundTripLatency());
    EXPECT_GT(legacy_ns / aw_ns, 900.0);
}

TEST_F(FlowTest, WrongPhasePanics)
{
    EXPECT_DEATH(flows.runC1Exit(simr, freq, nullptr), "runC1Exit");
    EXPECT_DEATH(flows.runC6Exit(simr, freq, nullptr), "runC6Exit");
    flows.runC1Entry(simr, freq, nullptr);
    simr.run();
    EXPECT_DEATH(flows.runC6Entry(simr, freq, nullptr),
                 "runC6Entry");
}

TEST_F(FlowTest, PhaseNames)
{
    EXPECT_STREQ(name(LegacyPhase::C6FlushCaches), "c6.flush");
    EXPECT_STREQ(name(LegacyPhase::C1Resident), "c1.resident");
}

TEST_F(FlowTest, RepeatedC1CyclesAreStable)
{
    for (int i = 0; i < 20; ++i) {
        flows.runC1Entry(simr, freq, nullptr);
        simr.run();
        flows.runC1Exit(simr, freq, nullptr);
        simr.run();
    }
    EXPECT_EQ(simr.now(),
              20 * engine.hardwareLatency(CStateId::C1, freq)
                       .total());
}

} // namespace
