/**
 * @file
 * Tests for the pluggable idle-governance API: the registry (spec
 * parse, round-trip, fatal diagnostics), per-core clone
 * independence, and the behavior of each built-in policy (teo,
 * ladder, static, oracle).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cluster/fleet.hh"
#include "cstate/governors.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::cstate;
using namespace aw::sim;

// --------------------------------------------------------- registry

TEST(GovernorRegistry, AdvertisesTheBuiltInKinds)
{
    const auto &kinds = governorKinds();
    for (const char *kind :
         {"menu", "teo", "ladder", "static", "oracle"}) {
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind),
                  kinds.end())
            << kind;
        EXPECT_FALSE(
            GovernorRegistry::instance().summary(kind).empty())
            << kind;
    }
}

TEST(GovernorRegistry, SpecsRoundTripThroughMake)
{
    const auto config = CStateConfig::legacyBaseline();
    for (const char *spec :
         {"menu", "teo", "ladder", "static:C6", "static:deepest",
          "static:shallowest", "oracle"}) {
        const auto policy = makeGovernor(spec, config);
        ASSERT_NE(policy, nullptr) << spec;
        EXPECT_EQ(policy->spec(), spec);
        // clone() preserves the spec and the configuration.
        const auto copy = policy->clone();
        EXPECT_EQ(copy->spec(), policy->spec());
        EXPECT_EQ(copy->config().describe(),
                  policy->config().describe());
    }
}

TEST(GovernorRegistry, ParseSplitsKindAndArg)
{
    const auto plain = parseGovernorSpec("menu");
    EXPECT_EQ(plain.kind, "menu");
    EXPECT_TRUE(plain.arg.empty());

    const auto with_arg = parseGovernorSpec("static:C6A");
    EXPECT_EQ(with_arg.kind, "static");
    EXPECT_EQ(with_arg.arg, "C6A");
}

TEST(GovernorRegistryDeathTest, UnknownNamesAreFatal)
{
    const auto config = CStateConfig::legacyBaseline();
    EXPECT_EXIT(makeGovernor("no_such_policy", config),
                testing::ExitedWithCode(1),
                "unknown governor 'no_such_policy'.*menu.*oracle");
    EXPECT_EXIT(makeGovernor("static:NoSuchState", config),
                testing::ExitedWithCode(1), "unknown C-state");
    EXPECT_EXIT(makeGovernor("static", config),
                testing::ExitedWithCode(1), "needs a state");
    // Argless kinds reject a stray argument rather than silently
    // running unparameterized under a mislabeled spec.
    EXPECT_EXIT(makeGovernor("menu:bogus", config),
                testing::ExitedWithCode(1), "takes no argument");
    EXPECT_EXIT(makeGovernor("oracle:x", config),
                testing::ExitedWithCode(1), "takes no argument");
    // Naming a state the configuration disables is a config error.
    EXPECT_EXIT(makeGovernor("static:C6A", config),
                testing::ExitedWithCode(1), "requires C6A enabled");
}

// ------------------------------------------------ clone independence

TEST(GovernorClone, ObservationsDoNotLeakAcrossClones)
{
    // One prototype, two per-core instances: core A's long idle
    // history must not change core B's predictions.
    const auto proto =
        makeGovernor("menu", CStateConfig::legacyBaseline());
    const auto a = proto->clone();
    const auto b = proto->clone();

    for (int i = 0; i < 30; ++i)
        a->observeIdle(fromMs(5.0));
    EXPECT_EQ(a->select(0), CStateId::C6);
    // B saw nothing: still the unseeded shallow choice.
    EXPECT_EQ(b->select(0), CStateId::C1);

    // Same property for the stateful teo and ladder policies.
    for (const char *spec : {"teo", "ladder"}) {
        const auto p =
            makeGovernor(spec, CStateConfig::legacyBaseline());
        const auto trained = p->clone();
        const auto naive = p->clone();
        for (int i = 0; i < 50; ++i)
            trained->observeIdle(fromMs(5.0));
        EXPECT_EQ(trained->select(0), CStateId::C6) << spec;
        EXPECT_EQ(naive->select(0), CStateId::C1) << spec;
    }
}

// ------------------------------------------------------ teo behavior

TEST(TeoGovernor, MajorityOfRecentHistoryPicksTheState)
{
    TeoGovernor teo(CStateConfig::legacyBaseline());
    // Consistently long idles: deep state.
    for (int i = 0; i < 20; ++i)
        teo.observeIdle(fromMs(2.0));
    EXPECT_EQ(teo.select(0), CStateId::C6);

    // A burst of short intercepts flips it shallow again.
    for (int i = 0; i < 20; ++i)
        teo.observeIdle(fromUs(5.0));
    EXPECT_EQ(teo.select(0), CStateId::C1);
}

TEST(TeoGovernor, MixedHistoryVetoesDeepEntries)
{
    TeoGovernor teo(CStateConfig::legacyBaseline());
    // 50/50 long/short: the shallow intercepts deny C6.
    for (int i = 0; i < 20; ++i) {
        teo.observeIdle(fromMs(2.0));
        teo.observeIdle(fromUs(5.0));
    }
    EXPECT_NE(teo.select(0), CStateId::C6);
    teo.reset();
    EXPECT_EQ(teo.select(0), CStateId::C1); // history gone
}

// --------------------------------------------------- ladder behavior

TEST(LadderGovernor, ClimbsOnHitsFallsOnMiss)
{
    LadderGovernor ladder(CStateConfig::legacyBaseline());
    EXPECT_EQ(ladder.select(0), CStateId::C1); // bottom rung

    // kPromoteHits covering idles climb exactly one rung.
    for (unsigned i = 0; i < LadderGovernor::kPromoteHits; ++i)
        ladder.observeIdle(fromMs(10.0));
    EXPECT_EQ(ladder.select(0), CStateId::C1E);

    for (unsigned i = 0; i < LadderGovernor::kPromoteHits; ++i)
        ladder.observeIdle(fromMs(10.0));
    EXPECT_EQ(ladder.select(0), CStateId::C6);

    // One idle below C6's target residency demotes immediately.
    ladder.observeIdle(fromUs(10.0));
    EXPECT_EQ(ladder.select(0), CStateId::C1E);

    ladder.reset();
    EXPECT_EQ(ladder.select(0), CStateId::C1);
}

// --------------------------------------------------- static behavior

TEST(StaticGovernor, AlwaysTheNamedState)
{
    StaticGovernor c6(CStateConfig::legacyBaseline(), "C6");
    EXPECT_EQ(c6.select(0), CStateId::C6);
    for (int i = 0; i < 10; ++i)
        c6.observeIdle(fromUs(1.0)); // pathological history
    EXPECT_EQ(c6.select(0), CStateId::C6);
    // Promotion ticks never move it either.
    EXPECT_EQ(c6.reselect(0, fromMs(100.0)), CStateId::C6);

    StaticGovernor deep(CStateConfig::aw(), "deepest");
    EXPECT_EQ(deep.select(0), CStateId::C6);
    EXPECT_EQ(deep.spec(), "static:deepest");
    StaticGovernor shallow(CStateConfig::aw(), "shallowest");
    EXPECT_EQ(shallow.select(0), CStateId::C6A);
}

// --------------------------------------------------- oracle behavior

TEST(OracleGovernor, SelectsByTrueIdleLength)
{
    OracleGovernor oracle(CStateConfig::legacyBaseline());
    EXPECT_TRUE(oracle.needsOracle());

    sim::Tick true_idle = 0;
    oracle.setOracle([&true_idle](sim::Tick) { return true_idle; });

    // Without a cost model: deepest state whose target residency
    // the true length covers.
    true_idle = fromUs(5.0);
    EXPECT_EQ(oracle.select(0), CStateId::C1);
    true_idle = fromUs(50.0);
    EXPECT_EQ(oracle.select(0), CStateId::C1E);
    true_idle = fromMs(2.0);
    EXPECT_EQ(oracle.select(0), CStateId::C6);
}

TEST(OracleGovernor, CostModelPicksTheCheapestState)
{
    OracleGovernor oracle(CStateConfig::legacyBaseline());
    oracle.setOracle([](sim::Tick) { return fromUs(100.0); });
    // A cost model that makes polling and C1E prohibitively
    // expensive: the oracle must skip C1E even though the residency
    // rule would pick it at 100 us.
    oracle.setCostModel([](CStateId s, sim::Tick) {
        if (s == CStateId::C0 || s == CStateId::C1E)
            return 1e9;
        return 1.0 + descriptor(s).depth;
    });
    EXPECT_EQ(oracle.select(0), CStateId::C1);

    // And C0 -- not idling at all -- is a real candidate: when the
    // model says every transition costs more than just polling
    // through the interval, the oracle polls.
    OracleGovernor poller(CStateConfig::legacyBaseline());
    poller.setOracle([](sim::Tick) { return fromUs(1.0); });
    poller.setCostModel([](CStateId s, sim::Tick) {
        return s == CStateId::C0 ? 0.5 : 2.0;
    });
    EXPECT_EQ(poller.select(0), CStateId::C0);
}

TEST(OracleGovernor, PromotionTicksNeverMoveOffTheChoice)
{
    // The select()-time pick was optimal for the whole known
    // interval: reselect() must return it unchanged (a promotion
    // tick deepening to C6 would pay exactly the entry flow the
    // oracle avoided), and canPromote() lets the host skip the
    // ticks entirely. Static policies are pinned the same way;
    // predictive ones keep promoting.
    OracleGovernor oracle(CStateConfig::legacyBaseline());
    oracle.setOracle([](sim::Tick) { return fromUs(50.0); });
    const CStateId chosen = oracle.select(0);
    EXPECT_EQ(oracle.reselect(0, fromMs(10.0)), chosen);
    EXPECT_FALSE(oracle.canPromote());

    const auto config = CStateConfig::legacyBaseline();
    EXPECT_FALSE(StaticGovernor(config, "C1").canPromote());
    EXPECT_TRUE(MenuGovernor(config).canPromote());
    EXPECT_TRUE(TeoGovernor(config).canPromote());
    EXPECT_TRUE(LadderGovernor(config).canPromote());
}

TEST(OracleGovernorDeathTest, SelectWithoutForeknowledgePanics)
{
    OracleGovernor oracle(CStateConfig::legacyBaseline());
    EXPECT_DEATH(oracle.select(0), "no foreknowledge");
}

TEST(OracleGovernorDeathTest, FleetModeIsRejectedUpFront)
{
    cluster::FleetConfig fc;
    fc.servers = 2;
    fc.server = server::ServerConfig::legacyC1C6();
    fc.server.governor = "oracle";
    EXPECT_EXIT(
        cluster::FleetSim(fc,
                          workload::WorkloadProfile::memcached(),
                          50e3),
        testing::ExitedWithCode(1), "single-server only");
}

TEST(OracleGovernorDeathTest, CentralDispatchIsRejected)
{
    // Packing (and any centrally dispatched stream) has no per-core
    // foreknowledge to offer: building the server must die with a
    // clear diagnostic.
    server::ServerConfig cfg = server::ServerConfig::ntBaseline();
    cfg.governor = "oracle";
    cfg.dispatch = server::DispatchPolicy::Packing;
    EXPECT_EXIT(
        server::ServerSim(cfg,
                          workload::WorkloadProfile::memcached(),
                          50e3),
        testing::ExitedWithCode(1), "foreknowledge");
}

// ------------------------------------------- end-to-end integration

TEST(GovernorIntegration, ServerRunsWithEveryBuiltInPolicy)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (const char *spec :
         {"menu", "teo", "ladder", "static:C6", "oracle"}) {
        server::ServerConfig cfg = server::ServerConfig::ntBaseline();
        cfg.governor = spec;
        server::ServerSim srv(cfg, profile, 50e3);
        const auto r = srv.run(fromMs(50.0), fromMs(5.0));
        EXPECT_GT(r.requests, 1000u) << spec;
        EXPECT_GT(r.packagePower, 0.0) << spec;
    }
}

TEST(GovernorIntegration, StaticDeepestForcesDeepResidency)
{
    const auto profile = workload::WorkloadProfile::memcached();
    server::ServerConfig cfg = server::ServerConfig::legacyC1C6();
    cfg.governor = "static:deepest";
    server::ServerSim srv(cfg, profile, 50e3);
    const auto r = srv.run(fromMs(100.0), fromMs(10.0));
    EXPECT_GT(r.residency.shareOf(CStateId::C6), 0.5);

    // ... where menu (the Sec 1 story) nearly never reaches C6.
    server::ServerConfig menu_cfg = server::ServerConfig::legacyC1C6();
    server::ServerSim menu_srv(menu_cfg, profile, 50e3);
    const auto m = menu_srv.run(fromMs(100.0), fromMs(10.0));
    EXPECT_LT(m.residency.shareOf(CStateId::C6), 0.05);
}

} // namespace
