/**
 * @file
 * Unit tests for the datacenter cost model (Table 5).
 */

#include <gtest/gtest.h>

#include "analysis/cost_model.hh"

namespace {

using namespace aw::analysis;

TEST(CostModel, UsdPerJoule)
{
    const CostModel cost;
    // $0.125 per kWh = $0.125 / 3.6e6 J.
    EXPECT_NEAR(cost.usdPerJoule(), 0.125 / 3.6e6, 1e-15);
}

TEST(CostModel, YearlyCostOfOneWatt)
{
    const CostModel cost;
    // 1 W for a year = 8760 h * 1 Wh = 8.76 kWh -> ~$1.095.
    EXPECT_NEAR(cost.yearlyCostUsd(1.0), 1.095, 0.001);
}

TEST(CostModel, FleetSavingsScaleLinearly)
{
    const CostModel cost;
    const double one = cost.yearlySavingsUsd(2.0, 1.0);
    const double two = cost.yearlySavingsUsd(3.0, 1.0);
    EXPECT_NEAR(two, 2.0 * one, 1e-6);
}

TEST(CostModel, PaperScaleMagnitude)
{
    // Table 5 reports $0.33M-0.59M per year per 100K servers; a
    // ~3-5 W per-CPU saving produces exactly that magnitude.
    const CostModel cost;
    const double usd = cost.yearlySavingsUsd(10.0, 6.0); // 4 W/CPU
    EXPECT_GT(usd, 0.3e6);
    EXPECT_LT(usd, 0.6e6);
}

TEST(CostModel, PueMultiplies)
{
    CostModel::Params params;
    params.pue = 2.0;
    const CostModel doubled(params);
    const CostModel base;
    EXPECT_NEAR(doubled.yearlySavingsUsd(5.0, 3.0),
                2.0 * base.yearlySavingsUsd(5.0, 3.0), 1e-6);
}

TEST(CostModel, SocketsPerServerMultiplies)
{
    CostModel::Params params;
    params.socketsPerServer = 2.0;
    const CostModel dual(params);
    const CostModel base;
    EXPECT_NEAR(dual.yearlySavingsUsd(5.0, 3.0),
                2.0 * base.yearlySavingsUsd(5.0, 3.0), 1e-6);
}

TEST(CostModel, NoSavingsNoCost)
{
    const CostModel cost;
    EXPECT_DOUBLE_EQ(cost.yearlySavingsUsd(3.0, 3.0), 0.0);
}

TEST(CostModel, SecondsPerYearConstant)
{
    EXPECT_DOUBLE_EQ(CostModel::kSecondsPerYear, 31536000.0);
}

} // namespace
