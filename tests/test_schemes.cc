/**
 * @file
 * Unit tests for the Table 4 power-gating scheme registry.
 */

#include <gtest/gtest.h>

#include "core/aw_core.hh"
#include "core/schemes.hh"

namespace {

using namespace aw;
using namespace aw::core;

TEST(Schemes, SevenRowsLikeTable4)
{
    core::AwCoreModel model;
    const auto rows = powerGatingSchemes(model.controller());
    EXPECT_EQ(rows.size(), 7u);
}

TEST(Schemes, AwRowIsLast)
{
    core::AwCoreModel model;
    const auto rows = powerGatingSchemes(model.controller());
    const auto &aw_row = rows.back();
    EXPECT_EQ(aw_row.technique, "AW (This work)");
    EXPECT_EQ(aw_row.coreType, "OoO CPU");
    EXPECT_EQ(aw_row.trigger, "Core idle");
    EXPECT_EQ(aw_row.gatedBlocks, "Most of core units");
}

TEST(Schemes, AwWakeOverheadTracksController)
{
    core::AwCoreModel model;
    const auto rows = powerGatingSchemes(model.controller());
    EXPECT_EQ(rows.back().wakeOverheadTime,
              model.controller().exitLatency());
    // ~70 ns like the paper's Table 4 row.
    EXPECT_LT(rows.back().wakeOverheadTime, sim::fromNs(80.0));
}

TEST(Schemes, AwGatesMoreThanPriorWorkAtSimilarTimescale)
{
    // AW gates "most of core units" with wake overhead within ~8x
    // of the AVX-only scheme: the whole design argument in one
    // assertion.
    core::AwCoreModel model;
    const auto rows = powerGatingSchemes(model.controller());
    const auto &ichannels = rows[5];
    ASSERT_EQ(ichannels.technique, "IChannels [35]");
    EXPECT_GT(rows.back().wakeOverheadTime,
              ichannels.wakeOverheadTime);
    EXPECT_LT(rows.back().wakeOverheadTime,
              8 * ichannels.wakeOverheadTime);
}

TEST(Schemes, LiteratureRowsCarrySources)
{
    core::AwCoreModel model;
    for (const auto &row : powerGatingSchemes(model.controller())) {
        EXPECT_FALSE(row.technique.empty());
        EXPECT_FALSE(row.wakeOverhead.empty());
    }
}

} // namespace
