/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"

namespace {

using namespace aw::sim;

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
    EXPECT_DOUBLE_EQ(acc.cv(), 0.4);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator acc;
    acc.add(3.5);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator acc;
    acc.add(10.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    acc.add(2.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

TEST(Accumulator, NumericallyStableOnOffsetData)
{
    // Welford should keep precision with a large offset.
    Accumulator acc;
    const double offset = 1e12;
    for (const double x : {1.0, 2.0, 3.0})
        acc.add(offset + x);
    EXPECT_NEAR(acc.variance(), 2.0 / 3.0, 1e-3);
}

TEST(Percentile, NearestRankExact)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(t.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(t.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(t.percentile(1), 1.0);
    EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
}

TEST(Percentile, UnsortedInput)
{
    PercentileTracker t;
    for (const double x : {5.0, 1.0, 4.0, 2.0, 3.0})
        t.add(x);
    EXPECT_DOUBLE_EQ(t.p50(), 3.0);
    EXPECT_DOUBLE_EQ(t.percentile(100), 5.0);
}

TEST(Percentile, AddAfterQueryInvalidatesCache)
{
    PercentileTracker t;
    t.add(1.0);
    EXPECT_DOUBLE_EQ(t.p99(), 1.0);
    t.add(100.0);
    EXPECT_DOUBLE_EQ(t.p99(), 100.0);
}

TEST(Percentile, MeanMatches)
{
    PercentileTracker t;
    for (const double x : {2.0, 4.0, 6.0})
        t.add(x);
    EXPECT_DOUBLE_EQ(t.mean(), 4.0);
    EXPECT_EQ(t.count(), 3u);
}

TEST(Percentile, EmptyTrackerIsDefinedAndZero)
{
    // Every percentile of an empty tracker is 0.0, matching the
    // empty Accumulator accessors: aggregation over a window with
    // no completed requests must not abort.
    PercentileTracker t;
    EXPECT_TRUE(t.empty());
    for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(t.percentile(p), 0.0) << p;
    EXPECT_DOUBLE_EQ(t.p50(), 0.0);
    EXPECT_DOUBLE_EQ(t.p99(), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);

    // And the tracker still works normally afterwards.
    t.add(7.0);
    EXPECT_DOUBLE_EQ(t.p99(), 7.0);
}

TEST(PercentileDeathTest, OutOfRangePanics)
{
    PercentileTracker t;
    t.add(1.0);
    EXPECT_DEATH(t.percentile(101), "range");
    EXPECT_DEATH(t.percentile(-0.5), "range");
}

/** Straight-line nearest-rank reference: sort a copy, take the
 *  1-based ceil(p/100 * n)-th order statistic. */
double
referencePercentile(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    if (p == 0.0)
        return samples.front();
    const auto n = static_cast<double>(samples.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    rank = std::max<std::size_t>(rank, 1);
    return samples[rank - 1];
}

TEST(PercentileProperty, MatchesReferenceOnRandomSamples)
{
    aw::sim::Rng rng(1234);
    for (int round = 0; round < 50; ++round) {
        const auto n =
            static_cast<std::size_t>(rng.uniformInt(1, 200));
        std::vector<double> samples;
        PercentileTracker t;
        for (std::size_t i = 0; i < n; ++i) {
            // Mix of heavy-tailed and discrete values so ties and
            // duplicates are exercised too.
            const double x = rng.bernoulli(0.3)
                                 ? std::floor(rng.uniform(0, 5))
                                 : rng.boundedPareto(1.0, 1e4, 1.1);
            samples.push_back(x);
            t.add(x);
        }
        for (const double p :
             {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
            EXPECT_DOUBLE_EQ(t.percentile(p),
                             referencePercentile(samples, p))
                << "n=" << n << " p=" << p;
        }
    }
}

TEST(PercentileProperty, BoundsAreMinAndMax)
{
    aw::sim::Rng rng(99);
    PercentileTracker t;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal(10.0, 4.0);
        t.add(x);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_DOUBLE_EQ(t.percentile(0.0), lo);
    EXPECT_DOUBLE_EQ(t.percentile(100.0), hi);
}

TEST(PercentileProperty, MergedTrackersEqualPooledSamples)
{
    aw::sim::Rng rng(4321);
    for (int round = 0; round < 20; ++round) {
        PercentileTracker a;
        PercentileTracker b;
        PercentileTracker pooled;
        const auto na =
            static_cast<std::size_t>(rng.uniformInt(0, 100));
        const auto nb =
            static_cast<std::size_t>(rng.uniformInt(1, 100));
        for (std::size_t i = 0; i < na; ++i) {
            const double x = rng.exponential(3.0);
            a.add(x);
            pooled.add(x);
        }
        for (std::size_t i = 0; i < nb; ++i) {
            const double x = rng.lognormalMeanCv(5.0, 1.5);
            b.add(x);
            pooled.add(x);
        }
        // Query a first so merge() must invalidate its sort cache.
        if (!a.empty())
            (void)a.p50();
        a.merge(b);
        ASSERT_EQ(a.count(), pooled.count());
        for (const double p : {0.0, 10.0, 50.0, 95.0, 99.0, 100.0})
            EXPECT_DOUBLE_EQ(a.percentile(p), pooled.percentile(p))
                << "na=" << na << " nb=" << nb << " p=" << p;
    }
}

TEST(Histogram, BinsCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(10.0); // upper edge is exclusive
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightsAndEdges)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 7);
    EXPECT_EQ(h.binCount(1), 7u);
    EXPECT_DOUBLE_EQ(h.binLo(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binHi(1), 2.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
}

TEST(HistogramDeathTest, BadConstruction)
{
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "bin");
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "exceed");
}

TEST(WeightedShares, SharesSumToOne)
{
    WeightedShares ws(3);
    ws.add(0, 10.0);
    ws.add(1, 30.0);
    ws.add(2, 60.0);
    EXPECT_DOUBLE_EQ(ws.share(0), 0.1);
    EXPECT_DOUBLE_EQ(ws.share(1), 0.3);
    EXPECT_DOUBLE_EQ(ws.share(2), 0.6);
    EXPECT_DOUBLE_EQ(ws.share(0) + ws.share(1) + ws.share(2), 1.0);
}

TEST(WeightedShares, EmptyIsZero)
{
    WeightedShares ws(2);
    EXPECT_DOUBLE_EQ(ws.share(0), 0.0);
    EXPECT_DOUBLE_EQ(ws.totalWeight(), 0.0);
}

TEST(WeightedShares, ResetClears)
{
    WeightedShares ws(2);
    ws.add(0, 5.0);
    ws.reset();
    EXPECT_DOUBLE_EQ(ws.totalWeight(), 0.0);
    EXPECT_DOUBLE_EQ(ws.weight(0), 0.0);
}

} // namespace
