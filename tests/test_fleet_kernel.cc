/**
 * @file
 * Epoch-parallel fleet kernel tests: the determinism contract of
 * the warehouse-scale execution path.
 *
 * The kernel's promise is that its three levers -- per-server worker
 * threads, routing-decision epochs, and the homogeneous-idle fast
 * path -- are pure execution strategies: every FleetResult field and
 * every emitted artifact byte must match the serial reference
 * exactly. These tests pin that promise at the awkward geometries
 * (K=1, K far above the outstanding count, an epoch boundary landing
 * exactly on a routing decision) and across 1/2/8 fleet threads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/fleet.hh"
#include "exp/emit.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"

namespace {

using namespace aw;
using namespace aw::cluster;

FleetConfig
kernelFleet(const std::string &routing, unsigned servers)
{
    FleetConfig fc;
    fc.servers = servers;
    fc.server = server::ServerConfig::legacyC1C6();
    fc.server.cores = 4;
    fc.server.idlePromotion = true;
    fc.routing = routing;
    return fc;
}

/** Assert two fleet runs are the same run, field for field. */
void
expectSameRun(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.routedPerServer, b.routedPerServer);
    EXPECT_EQ(a.neverRouted, b.neverRouted);
    EXPECT_DOUBLE_EQ(a.fleetPower, b.fleetPower);
    EXPECT_DOUBLE_EQ(a.fleetEnergy, b.fleetEnergy);
    EXPECT_DOUBLE_EQ(a.energyPerRequestMj, b.energyPerRequestMj);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_DOUBLE_EQ(a.p99LatencyUs, b.p99LatencyUs);
    EXPECT_DOUBLE_EQ(a.p999LatencyUs, b.p999LatencyUs);
    EXPECT_DOUBLE_EQ(a.deepIdleShare, b.deepIdleShare);
    EXPECT_DOUBLE_EQ(a.minServerDeepShare, b.minServerDeepShare);
    EXPECT_DOUBLE_EQ(a.maxServerDeepShare, b.maxServerDeepShare);
    EXPECT_DOUBLE_EQ(a.busiestShareOfLoad, b.busiestShareOfLoad);
    ASSERT_EQ(a.perServer.size(), b.perServer.size());
    for (std::size_t i = 0; i < a.perServer.size(); ++i) {
        EXPECT_EQ(a.perServer[i].requests, b.perServer[i].requests)
            << "server " << i;
        EXPECT_DOUBLE_EQ(a.perServer[i].coreEnergy,
                         b.perServer[i].coreEnergy)
            << "server " << i;
        EXPECT_DOUBLE_EQ(a.perServer[i].avgLatencyUs,
                         b.perServer[i].avgLatencyUs)
            << "server " << i;
    }
}

// ------------------------------------------------- edge geometries

TEST(FleetKernel, SingleServerFleetRoutesEverythingToIt)
{
    // K=1 degenerates every policy to "route to server 0"; the
    // kernel must handle the one-slot partition (and a worker count
    // above the server count) without special-casing.
    for (const char *routing : {"round-robin", "pack-first"}) {
        auto fc = kernelFleet(routing, 1);
        fc.fleetThreads = 8; // more workers than servers
        FleetSim fleet(fc, workload::WorkloadProfile::memcached(),
                       20e3);
        const auto r =
            fleet.run(sim::fromMs(60.0), sim::fromMs(6.0));
        ASSERT_EQ(r.routedPerServer.size(), 1u);
        EXPECT_EQ(r.routedPerServer[0], r.routed);
        EXPECT_GT(r.requests, 0u);
        EXPECT_EQ(r.neverRouted, 0u);
        EXPECT_DOUBLE_EQ(r.busiestShareOfLoad, 1.0);
    }
}

TEST(FleetKernel, MoreServersThanOutstandingLeavesSparesIdle)
{
    // K far above the outstanding request count: pack-first
    // concentrates the trickle of load on the first server(s) and
    // the spares never see an arrival. Those spares are exactly the
    // homogeneous-idle fast path's population -- and their runs
    // must be identical to each other (idle evolution draws no
    // per-server randomness).
    auto fc = kernelFleet("pack-first", 32);
    FleetSim fleet(fc, workload::WorkloadProfile::memcached(), 4e3);
    const auto r = fleet.run(sim::fromMs(60.0), sim::fromMs(6.0));

    EXPECT_GT(r.neverRouted, 0u);
    ASSERT_EQ(r.perServer.size(), 32u);
    std::vector<unsigned> idle;
    for (unsigned i = 0; i < 32; ++i)
        if (r.routedPerServer[i] == 0)
            idle.push_back(i);
    ASSERT_EQ(idle.size(), r.neverRouted);
    ASSERT_GE(idle.size(), 2u);
    for (std::size_t k = 1; k < idle.size(); ++k) {
        EXPECT_DOUBLE_EQ(r.perServer[idle[0]].coreEnergy,
                         r.perServer[idle[k]].coreEnergy);
        EXPECT_EQ(r.perServer[idle[0]].requests,
                  r.perServer[idle[k]].requests);
        EXPECT_EQ(r.perServer[idle[0]].events,
                  r.perServer[idle[k]].events);
    }
    // Round-robin, by contrast, touches every server.
    FleetSim spread(kernelFleet("round-robin", 32),
                    workload::WorkloadProfile::memcached(), 4e3);
    EXPECT_EQ(
        spread.run(sim::fromMs(60.0), sim::fromMs(6.0)).neverRouted,
        0u);
}

TEST(FleetKernel, IdleFastPathIsBitIdentical)
{
    // The memoization contract: reusing one idle reference run for
    // every never-routed server must reproduce the
    // simulate-everything reference bit for bit, events included.
    auto once = [](bool fast_path) {
        auto fc = kernelFleet("pack-first", 24);
        fc.idleFastPath = fast_path;
        FleetSim fleet(fc, workload::WorkloadProfile::memcached(),
                       5e3);
        return fleet.run(sim::fromMs(80.0), sim::fromMs(8.0));
    };
    const auto fast = once(true);
    const auto reference = once(false);
    EXPECT_GT(fast.neverRouted, 0u); // the path actually engaged
    expectSameRun(fast, reference);
}

TEST(FleetKernel, EpochBoundaryOnRoutingDecisionIsInvisible)
{
    // Deterministic arrivals every 50 us make every routing decision
    // land on a multiple of 50 us; a 1 ms epoch puts a boundary
    // drain exactly ON every 20th decision. The boundary drain must
    // pop exactly what the per-decision drain would have popped, so
    // aligned, misaligned and absent epochs are all the same run.
    auto once = [](double epoch_s) {
        workload::ArrivalTrace trace(
            std::vector<sim::Tick>(40, sim::fromUs(50.0)));
        auto fc = kernelFleet("pack-first", 4);
        fc.epochSeconds = epoch_s;
        FleetSim fleet(fc, workload::WorkloadProfile::memcached(),
                       20e3);
        fleet.setArrivalTrace(trace);
        return fleet.run(sim::fromMs(40.0), sim::fromMs(4.0));
    };
    const auto one_epoch = once(0.0);
    const auto aligned = once(1e-3);   // boundary == decision tick
    const auto offbeat = once(3.7e-4); // boundary between decisions
    EXPECT_GT(one_epoch.requests, 0u);
    expectSameRun(one_epoch, aligned);
    expectSameRun(one_epoch, offbeat);
}

TEST(FleetKernel, ThreadCountAndEpochAreInvisibleTogether)
{
    auto once = [](unsigned threads, double epoch_s) {
        auto fc = kernelFleet("pack-first", 8);
        fc.fleetThreads = threads;
        fc.epochSeconds = epoch_s;
        FleetSim fleet(fc, workload::WorkloadProfile::memcached(),
                       30e3);
        return fleet.run(sim::fromMs(60.0), sim::fromMs(6.0));
    };
    const auto serial = once(1, 0.0);
    expectSameRun(serial, once(2, 0.0));
    expectSameRun(serial, once(8, 0.0));
    expectSameRun(serial, once(8, 0.01));
    expectSameRun(serial, once(2, 0.013)); // misaligned epoch
}

// ------------------------------------------- artifact byte identity

TEST(FleetKernel, SweepArtifactsAreByteIdenticalAcrossKernelKnobs)
{
    // The full artifact surface -- sweep CSV/JSON, the aw-timeline/3
    // fold and the aw-trace/1 attribution -- rendered from the
    // serial reference and from every kernel configuration must be
    // the same bytes.
    auto sweep = [](unsigned fleet_threads, double epoch_s) {
        exp::ExperimentSpec spec;
        spec.name = "kernel-identity";
        spec.workloads = {"memcached"};
        spec.configs = {"aw", "c1c6"};
        spec.policies = {"round-robin", "pack-first"};
        spec.fleetSizes = {8};
        spec.qps = {300e3};
        spec.seconds = 0.1;
        spec.seed = 42;
        spec.timelineIntervalSeconds = 0.01;
        spec.traceRequests = true;
        spec.fleetThreads = fleet_threads;
        spec.epochSeconds = epoch_s;
        return exp::SweepRunner(1).run(spec);
    };
    const auto reference = sweep(1, 0.0);
    const std::string csv = exp::toCsv(reference);
    const std::string json = exp::toJson(reference);
    const std::string timeline = exp::toTimelineCsv(reference);
    const std::string trace = exp::toTraceCsv(reference);
    struct Knobs
    {
        unsigned threads;
        double epoch;
    };
    for (const Knobs k : {Knobs{2, 0.0}, Knobs{8, 0.0},
                          Knobs{8, 0.02}, Knobs{2, 0.0073}}) {
        const auto result = sweep(k.threads, k.epoch);
        EXPECT_EQ(exp::toCsv(result), csv)
            << "threads=" << k.threads << " epoch=" << k.epoch;
        EXPECT_EQ(exp::toJson(result), json)
            << "threads=" << k.threads << " epoch=" << k.epoch;
        EXPECT_EQ(exp::toTimelineCsv(result), timeline)
            << "threads=" << k.threads << " epoch=" << k.epoch;
        EXPECT_EQ(exp::toTraceCsv(result), trace)
            << "threads=" << k.threads << " epoch=" << k.epoch;
    }
}

// --------------------------------------------- scale (the headline)

TEST(FleetKernel, PackFirstPlusAwBeatsSpreadTunedC6AtFleetScale)
{
    // The fleet_10k claim in miniature: on a mostly-idle diurnal
    // fleet, consolidating onto few servers under the AW config
    // draws less power than spreading the same load round-robin
    // over tuned-C6 servers -- the PR-2 power gap, reproduced
    // through the epoch-parallel kernel with the fast path on.
    auto once = [](const char *config, const char *routing) {
        FleetConfig fc;
        fc.servers = 100;
        fc.server = exp::configByName(config);
        fc.server.idlePromotion = true;
        fc.routing = routing;
        fc.seed = 42;
        fc.schedule = cluster::RateSchedule::sinusoidal(
            sim::fromMs(200.0), 0.6);
        fc.fleetThreads = 0; // hardware concurrency
        fc.epochSeconds = 0.05;
        FleetSim fleet(fc, exp::profileByName("memcached"), 30e3);
        return fleet.run(sim::fromMs(200.0), sim::fromMs(20.0));
    };
    const auto packed = once("aw", "pack-first");
    const auto spread = once("c1c6", "round-robin");
    EXPECT_GT(packed.neverRouted, 50u); // mostly-idle fleet
    EXPECT_EQ(spread.neverRouted, 0u);
    EXPECT_LT(packed.fleetPower, spread.fleetPower);
    EXPECT_GT(packed.maxServerDeepShare, 0.95);
}

// ----------------------------------------------------- validation

TEST(FleetKernelDeathTest, RejectsBadEpochLength)
{
    const auto profile = workload::WorkloadProfile::memcached();
    auto fc = kernelFleet("round-robin", 2);
    fc.epochSeconds = -0.5;
    EXPECT_EXIT(FleetSim(fc, profile, 1e3),
                testing::ExitedWithCode(1), "epoch");
    fc.epochSeconds = std::nan("");
    EXPECT_EXIT(FleetSim(fc, profile, 1e3),
                testing::ExitedWithCode(1), "epoch");
}

} // namespace
