/**
 * @file
 * Golden regression suite: the reproduced headline numbers of the
 * paper (Fig 8 memcached energy/latency, Table 4 scheme ranking)
 * and of the PR-2 fleet study (pack-first+AW vs round-robin+tuned
 * C6), pinned with explicit tolerances and driven through
 * exp::SweepRunner so the experiment engine itself is exercised
 * end to end.
 *
 * Every sweep here is deterministic (fixed spec seed), so a
 * failure means the model changed: a drifted C6 exit flow, a
 * routing skew, a power constant. The tolerances say how much
 * drift we accept before a human has to re-baseline; they are NOT
 * noise margins.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/routing.hh"
#include "core/aw_core.hh"
#include "core/schemes.hh"
#include "cstate/cstate.hh"
#include "exp/runner.hh"
#include "server/config.hh"

namespace {

using namespace aw;
using cstate::CStateId;
using exp::ExperimentSpec;
using exp::SweepRunner;

/** |actual - golden| <= tol * golden (relative tolerance). */
#define EXPECT_NEAR_REL(actual, golden, tol)                          \
    EXPECT_NEAR(actual, golden, (tol) * (golden))

// --------------------------------------- Fig 8: memcached, 1 server

class Fig8Golden : public testing::Test
{
  protected:
    static const exp::SweepResult &sweep()
    {
        // Shared across the suite's tests: baseline vs AW at a
        // trough (50 KQPS) and a shoulder (200 KQPS) load point,
        // 0.4 s measured window.
        static const exp::SweepResult result = [] {
            ExperimentSpec spec;
            spec.name = "golden-fig8";
            spec.workloads = {"memcached"};
            spec.configs = {"baseline", "aw"};
            spec.qps = {50e3, 200e3};
            spec.seconds = 0.4;
            spec.warmupSeconds = 0.04;
            return SweepRunner().run(spec);
        }();
        return result;
    }
};

TEST_F(Fig8Golden, BaselineResidencyStructure)
{
    // Fig 8a: at low load the legacy baseline parks in C1E (the
    // paper measures ~82%); by 200 KQPS C1 dominates and C1E has
    // collapsed.
    const auto &low = sweep().at({.config = "baseline", .qps = 50e3});
    EXPECT_NEAR(low.residency[cstate::index(CStateId::C1E)], 0.824,
                0.05);
    EXPECT_NEAR(low.residency[cstate::index(CStateId::C0)], 0.074,
                0.03);

    const auto &high =
        sweep().at({.config = "baseline", .qps = 200e3});
    EXPECT_NEAR(high.residency[cstate::index(CStateId::C1)], 0.537,
                0.05);
    EXPECT_LT(high.residency[cstate::index(CStateId::C1E)], 0.30);
}

TEST_F(Fig8Golden, PackagePowerPoints)
{
    EXPECT_NEAR_REL(
        sweep().at({.config = "baseline", .qps = 50e3}).powerW,
        30.63, 0.05);
    EXPECT_NEAR_REL(
        sweep().at({.config = "baseline", .qps = 200e3}).powerW,
        37.49, 0.05);
    EXPECT_NEAR_REL(sweep().at({.config = "aw", .qps = 50e3}).powerW,
                    24.22, 0.05);
    EXPECT_NEAR_REL(
        sweep().at({.config = "aw", .qps = 200e3}).powerW, 32.38,
        0.05);
}

TEST_F(Fig8Golden, AwCorePowerReductionAtTrough)
{
    // Fig 8b at 50 KQPS: ~51% average core power reduction. The
    // package numbers include the constant 18 W uncore, so strip
    // it to compare at core level.
    const double uncore = server::ServerConfig::baseline().uncorePower;
    const double base =
        sweep().at({.config = "baseline", .qps = 50e3}).powerW -
        uncore;
    const double aw =
        sweep().at({.config = "aw", .qps = 50e3}).powerW - uncore;
    EXPECT_NEAR((base - aw) / base, 0.51, 0.04);
}

TEST_F(Fig8Golden, AwLatencyDegradationIsSmall)
{
    // Fig 8b's other half: the AW savings cost almost no latency.
    const auto &base =
        sweep().at({.config = "baseline", .qps = 50e3});
    const auto &aw = sweep().at({.config = "aw", .qps = 50e3});
    EXPECT_NEAR_REL(base.avgLatencyUs, 10.22, 0.10);
    EXPECT_NEAR_REL(aw.avgLatencyUs, 10.42, 0.10);
    EXPECT_LT((aw.avgLatencyUs - base.avgLatencyUs) /
                  base.avgLatencyUs,
              0.05);
    EXPECT_LT((aw.p99LatencyUs - base.p99LatencyUs) /
                  base.p99LatencyUs,
              0.10);

    // And AW actually harvests deep idle while doing so.
    EXPECT_NEAR(aw.deepIdleShare, 0.925, 0.04);
}

// ----------------------------- PR-2 fleet study: policy x config

class FleetGolden : public testing::Test
{
  protected:
    static const exp::SweepResult &sweep()
    {
        static const exp::SweepResult result = [] {
            ExperimentSpec spec;
            spec.name = "golden-fleet";
            spec.workloads = {"memcached"};
            spec.configs = {"c1c6", "aw_c6a"};
            spec.policies = {"round-robin", "pack-first"};
            spec.fleetSizes = {8};
            spec.qps = {400e3};
            spec.seconds = 0.4;
            spec.warmupSeconds = 0.04;
            return SweepRunner().run(spec);
        }();
        return result;
    }
};

TEST_F(FleetGolden, HeadlineFleetPower)
{
    // The PR-2 finding: pack-first + AW ~182 W vs round-robin +
    // tuned C6 ~269 W for the 8-server 400 KQPS memcached fleet.
    const auto &legacy =
        sweep().at({.config = "c1c6", .policy = "round-robin"});
    const auto &aw =
        sweep().at({.config = "aw_c6a", .policy = "pack-first"});
    EXPECT_NEAR_REL(legacy.powerW, 268.8, 0.04);
    EXPECT_NEAR_REL(aw.powerW, 182.2, 0.04);

    // ... at comparable p99 (a few us apart, tens not hundreds).
    EXPECT_NEAR_REL(legacy.p99LatencyUs, 38.8, 0.15);
    EXPECT_NEAR_REL(aw.p99LatencyUs, 43.4, 0.15);
}

TEST_F(FleetGolden, PackFirstConsolidatesSparesIntoDeepIdle)
{
    // Under pack-first the spare servers reach 100% deep idle even
    // on the legacy hierarchy; under round-robin + legacy nobody
    // does.
    const auto &packed =
        sweep().at({.config = "c1c6", .policy = "pack-first"});
    EXPECT_GT(packed.maxServerDeepShare, 0.999);
    EXPECT_NEAR_REL(packed.powerW, 188.4, 0.04);
    EXPECT_NEAR(packed.busiestShareOfLoad, 0.893, 0.05);

    const auto &spread =
        sweep().at({.config = "c1c6", .policy = "round-robin"});
    EXPECT_LT(spread.maxServerDeepShare, 0.01);
    EXPECT_NEAR(spread.busiestShareOfLoad, 0.125, 0.01);
}

TEST_F(FleetGolden, AwNeedsNoRoutingHelp)
{
    // AW's whole point at fleet scale: round-robin + AW already
    // matches pack-first + AW (within 1%), because C6A harvests
    // the short gaps spread routing leaves everywhere.
    const auto &rr =
        sweep().at({.config = "aw_c6a", .policy = "round-robin"});
    const auto &pf =
        sweep().at({.config = "aw_c6a", .policy = "pack-first"});
    EXPECT_NEAR_REL(rr.powerW, pf.powerW, 0.01);
    EXPECT_NEAR(rr.deepIdleShare, 0.952, 0.03);
}

// -------------------- Governor sensitivity (the PR-4 policy axis)

class GovernorGolden : public testing::Test
{
  protected:
    static const exp::SweepResult &sweep()
    {
        // Tuned legacy C6 vs AW across every built-in governor at
        // the 50 KQPS trough: the grid behind
        // bench_ext_governors.
        static const exp::SweepResult result = [] {
            ExperimentSpec spec;
            spec.name = "golden-governors";
            spec.workloads = {"memcached"};
            spec.configs = {"c1c6", "aw_c6a"};
            spec.governors = {"menu",   "teo",
                              "ladder", "oracle",
                              "static:deepest",
                              "static:shallowest"};
            spec.qps = {50e3};
            spec.seconds = 0.4;
            spec.warmupSeconds = 0.04;
            return SweepRunner().run(spec);
        }();
        return result;
    }

    static const exp::PointResult &
    at(const char *config, const char *governor)
    {
        return sweep().at({.config = config, .governor = governor});
    }
};

TEST(GovernorGoldenPaired, OracleIsTheEnergyLowerBound)
{
    // The clairvoyant governor -- told every true idle length and
    // choosing by the live energy model -- must not lose to any
    // other policy on energy per request at equal offered load.
    // Paired streams: every governor runs as its own single-point
    // sweep, so each comparison sees the identical grid seed and
    // the identical arrival sequence (within one shared sweep the
    // cells would get distinct derived seeds, and on a config with
    // a single enabled state every governor is decision-identical,
    // leaving only seed noise to compare). The 0.1% slack covers
    // exactly that degenerate tie.
    for (const char *config : {"c1c6", "aw_c6a"}) {
        auto energy = [&config](const char *governor) {
            ExperimentSpec spec;
            spec.name = "golden-governor-pair";
            spec.configs = {config};
            spec.governors = {governor};
            spec.qps = {50e3};
            spec.seconds = 0.3;
            spec.warmupSeconds = 0.03;
            return SweepRunner()
                .run(spec)
                .points.front()
                .energyPerRequestMj;
        };
        const double oracle = energy("oracle");
        for (const char *g :
             {"menu", "teo", "ladder", "static:deepest",
              "static:shallowest"}) {
            EXPECT_LE(oracle, energy(g) * 1.001)
                << config << " vs " << g;
        }
    }
}

TEST_F(GovernorGolden, LegacyC6IsHighlyGovernorSensitive)
{
    // With an expensive deep state, governor quality is worth
    // watts: menu leaves the oracle's savings on the table
    // (~33.6 W vs ~26.8 W package at the trough).
    EXPECT_NEAR_REL(at("c1c6", "menu").powerW, 33.6, 0.05);
    EXPECT_NEAR_REL(at("c1c6", "oracle").powerW, 26.8, 0.05);

    // ... and the naive endpoints show why prediction is hard:
    // always-C6 saves power but multiplies latency, always-shallow
    // saves nothing.
    EXPECT_GT(at("c1c6", "static:deepest").avgLatencyUs,
              3.0 * at("c1c6", "menu").avgLatencyUs);
    EXPECT_NEAR_REL(at("c1c6", "static:shallowest").powerW,
                    at("c1c6", "menu").powerW, 0.02);
}

TEST_F(GovernorGolden, AwCollapsesTheGovernorSensitivityGap)
{
    // The paper's Sec 1 claim, quantified: with C6A's near-free
    // wake, the oracle-minus-menu package-power gap is a small
    // fraction of the gap under legacy C6, and even the worst
    // governor costs almost no latency.
    const double gap_legacy =
        at("c1c6", "menu").powerW - at("c1c6", "oracle").powerW;
    const double gap_aw = std::abs(at("aw_c6a", "menu").powerW -
                                   at("aw_c6a", "oracle").powerW);
    EXPECT_GT(gap_legacy, 4.0);
    EXPECT_LT(gap_aw, 0.15 * gap_legacy);

    const double lat_spread_legacy =
        at("c1c6", "static:deepest").avgLatencyUs -
        at("c1c6", "menu").avgLatencyUs;
    const double lat_spread_aw =
        std::abs(at("aw_c6a", "static:deepest").avgLatencyUs -
                 at("aw_c6a", "menu").avgLatencyUs);
    EXPECT_GT(lat_spread_legacy, 15.0);
    EXPECT_LT(lat_spread_aw, 2.0);
}

TEST(GovernorGoldenCompat, MenuAxisIsBitIdenticalToTheDefaultPath)
{
    // Backward compatibility with the PR-3 engine: an explicit
    // governors={menu} axis must reproduce a no-axis sweep (the
    // path every pre-governor golden number above runs through)
    // bit for bit, single-server and fleet alike.
    ExperimentSpec base;
    base.name = "compat";
    base.configs = {"c1c6", "aw_c6a"};
    base.policies = {"round-robin", "pack-first"};
    base.fleetSizes = {2};
    base.qps = {100e3};
    base.seconds = 0.05;
    base.warmupSeconds = 0.005;

    ExperimentSpec menu = base;
    menu.governors = {"menu"};

    const auto a = SweepRunner().run(base);
    const auto b = SweepRunner().run(menu);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].requests, b.points[i].requests);
        EXPECT_EQ(a.points[i].powerW, b.points[i].powerW);
        EXPECT_EQ(a.points[i].avgLatencyUs,
                  b.points[i].avgLatencyUs);
        EXPECT_EQ(a.points[i].p99LatencyUs,
                  b.points[i].p99LatencyUs);
        EXPECT_EQ(a.points[i].residency, b.points[i].residency);
    }
}

// ------------------------------------- Table 4: scheme ranking

TEST(Table4Golden, WakeOverheadRanking)
{
    core::AwCoreModel model;
    const auto rows = core::powerGatingSchemes(model.controller());

    ExperimentSpec spec;
    spec.name = "golden-table4";
    for (const auto &row : rows)
        spec.variants.push_back(row.technique);

    const auto sweep = SweepRunner().run(
        spec, [&rows](const exp::GridPoint &pt) {
            exp::PointResult res;
            res.point = pt;
            res.extras.emplace_back(
                "wake_ns", core::schemeWakeNs(rows, pt.variant));
            return res;
        });

    auto wake = [&](const char *technique) {
        return sweep.at({.variant = technique})
            .extras.front()
            .second;
    };

    // The published anchors.
    EXPECT_DOUBLE_EQ(wake("MAPG [102]"), 10.0);
    EXPECT_DOUBLE_EQ(wake("IChannels [35]"), 15.0);

    // AW's wake-up comes from the live controller model: ~78 ns,
    // slower than the AVX-only gates but within one order of
    // magnitude -- the paper's Table 4 argument.
    const double aw = wake("AW (This work)");
    EXPECT_NEAR(aw, 78.0, 8.0);
    EXPECT_GT(aw, wake("IChannels [35]"));
    EXPECT_LT(aw, 10.0 * wake("IChannels [35]"));
}

} // namespace
