/**
 * @file
 * Golden regression suite: the reproduced headline numbers of the
 * paper (Fig 8 memcached energy/latency, Table 4 scheme ranking)
 * and of the PR-2 fleet study (pack-first+AW vs round-robin+tuned
 * C6), pinned with explicit tolerances and driven through
 * exp::SweepRunner so the experiment engine itself is exercised
 * end to end.
 *
 * Every sweep here is deterministic (fixed spec seed), so a
 * failure means the model changed: a drifted C6 exit flow, a
 * routing skew, a power constant. The tolerances say how much
 * drift we accept before a human has to re-baseline; they are NOT
 * noise margins.
 */

#include <gtest/gtest.h>

#include "cluster/routing.hh"
#include "core/aw_core.hh"
#include "core/schemes.hh"
#include "cstate/cstate.hh"
#include "exp/runner.hh"
#include "server/config.hh"

namespace {

using namespace aw;
using cstate::CStateId;
using exp::ExperimentSpec;
using exp::SweepRunner;

/** |actual - golden| <= tol * golden (relative tolerance). */
#define EXPECT_NEAR_REL(actual, golden, tol)                          \
    EXPECT_NEAR(actual, golden, (tol) * (golden))

// --------------------------------------- Fig 8: memcached, 1 server

class Fig8Golden : public testing::Test
{
  protected:
    static const exp::SweepResult &sweep()
    {
        // Shared across the suite's tests: baseline vs AW at a
        // trough (50 KQPS) and a shoulder (200 KQPS) load point,
        // 0.4 s measured window.
        static const exp::SweepResult result = [] {
            ExperimentSpec spec;
            spec.name = "golden-fig8";
            spec.workloads = {"memcached"};
            spec.configs = {"baseline", "aw"};
            spec.qps = {50e3, 200e3};
            spec.seconds = 0.4;
            spec.warmupSeconds = 0.04;
            return SweepRunner().run(spec);
        }();
        return result;
    }
};

TEST_F(Fig8Golden, BaselineResidencyStructure)
{
    // Fig 8a: at low load the legacy baseline parks in C1E (the
    // paper measures ~82%); by 200 KQPS C1 dominates and C1E has
    // collapsed.
    const auto &low = sweep().at({.config = "baseline", .qps = 50e3});
    EXPECT_NEAR(low.residency[cstate::index(CStateId::C1E)], 0.824,
                0.05);
    EXPECT_NEAR(low.residency[cstate::index(CStateId::C0)], 0.074,
                0.03);

    const auto &high =
        sweep().at({.config = "baseline", .qps = 200e3});
    EXPECT_NEAR(high.residency[cstate::index(CStateId::C1)], 0.537,
                0.05);
    EXPECT_LT(high.residency[cstate::index(CStateId::C1E)], 0.30);
}

TEST_F(Fig8Golden, PackagePowerPoints)
{
    EXPECT_NEAR_REL(
        sweep().at({.config = "baseline", .qps = 50e3}).powerW,
        30.63, 0.05);
    EXPECT_NEAR_REL(
        sweep().at({.config = "baseline", .qps = 200e3}).powerW,
        37.49, 0.05);
    EXPECT_NEAR_REL(sweep().at({.config = "aw", .qps = 50e3}).powerW,
                    24.22, 0.05);
    EXPECT_NEAR_REL(
        sweep().at({.config = "aw", .qps = 200e3}).powerW, 32.38,
        0.05);
}

TEST_F(Fig8Golden, AwCorePowerReductionAtTrough)
{
    // Fig 8b at 50 KQPS: ~51% average core power reduction. The
    // package numbers include the constant 18 W uncore, so strip
    // it to compare at core level.
    const double uncore = server::ServerConfig::baseline().uncorePower;
    const double base =
        sweep().at({.config = "baseline", .qps = 50e3}).powerW -
        uncore;
    const double aw =
        sweep().at({.config = "aw", .qps = 50e3}).powerW - uncore;
    EXPECT_NEAR((base - aw) / base, 0.51, 0.04);
}

TEST_F(Fig8Golden, AwLatencyDegradationIsSmall)
{
    // Fig 8b's other half: the AW savings cost almost no latency.
    const auto &base =
        sweep().at({.config = "baseline", .qps = 50e3});
    const auto &aw = sweep().at({.config = "aw", .qps = 50e3});
    EXPECT_NEAR_REL(base.avgLatencyUs, 10.22, 0.10);
    EXPECT_NEAR_REL(aw.avgLatencyUs, 10.42, 0.10);
    EXPECT_LT((aw.avgLatencyUs - base.avgLatencyUs) /
                  base.avgLatencyUs,
              0.05);
    EXPECT_LT((aw.p99LatencyUs - base.p99LatencyUs) /
                  base.p99LatencyUs,
              0.10);

    // And AW actually harvests deep idle while doing so.
    EXPECT_NEAR(aw.deepIdleShare, 0.925, 0.04);
}

// ----------------------------- PR-2 fleet study: policy x config

class FleetGolden : public testing::Test
{
  protected:
    static const exp::SweepResult &sweep()
    {
        static const exp::SweepResult result = [] {
            ExperimentSpec spec;
            spec.name = "golden-fleet";
            spec.workloads = {"memcached"};
            spec.configs = {"c1c6", "aw_c6a"};
            spec.policies = {"round-robin", "pack-first"};
            spec.fleetSizes = {8};
            spec.qps = {400e3};
            spec.seconds = 0.4;
            spec.warmupSeconds = 0.04;
            return SweepRunner().run(spec);
        }();
        return result;
    }
};

TEST_F(FleetGolden, HeadlineFleetPower)
{
    // The PR-2 finding: pack-first + AW ~182 W vs round-robin +
    // tuned C6 ~269 W for the 8-server 400 KQPS memcached fleet.
    const auto &legacy =
        sweep().at({.config = "c1c6", .policy = "round-robin"});
    const auto &aw =
        sweep().at({.config = "aw_c6a", .policy = "pack-first"});
    EXPECT_NEAR_REL(legacy.powerW, 268.8, 0.04);
    EXPECT_NEAR_REL(aw.powerW, 182.2, 0.04);

    // ... at comparable p99 (a few us apart, tens not hundreds).
    EXPECT_NEAR_REL(legacy.p99LatencyUs, 38.8, 0.15);
    EXPECT_NEAR_REL(aw.p99LatencyUs, 43.4, 0.15);
}

TEST_F(FleetGolden, PackFirstConsolidatesSparesIntoDeepIdle)
{
    // Under pack-first the spare servers reach 100% deep idle even
    // on the legacy hierarchy; under round-robin + legacy nobody
    // does.
    const auto &packed =
        sweep().at({.config = "c1c6", .policy = "pack-first"});
    EXPECT_GT(packed.maxServerDeepShare, 0.999);
    EXPECT_NEAR_REL(packed.powerW, 188.4, 0.04);
    EXPECT_NEAR(packed.busiestShareOfLoad, 0.893, 0.05);

    const auto &spread =
        sweep().at({.config = "c1c6", .policy = "round-robin"});
    EXPECT_LT(spread.maxServerDeepShare, 0.01);
    EXPECT_NEAR(spread.busiestShareOfLoad, 0.125, 0.01);
}

TEST_F(FleetGolden, AwNeedsNoRoutingHelp)
{
    // AW's whole point at fleet scale: round-robin + AW already
    // matches pack-first + AW (within 1%), because C6A harvests
    // the short gaps spread routing leaves everywhere.
    const auto &rr =
        sweep().at({.config = "aw_c6a", .policy = "round-robin"});
    const auto &pf =
        sweep().at({.config = "aw_c6a", .policy = "pack-first"});
    EXPECT_NEAR_REL(rr.powerW, pf.powerW, 0.01);
    EXPECT_NEAR(rr.deepIdleShare, 0.952, 0.03);
}

// ------------------------------------- Table 4: scheme ranking

TEST(Table4Golden, WakeOverheadRanking)
{
    core::AwCoreModel model;
    const auto rows = core::powerGatingSchemes(model.controller());

    ExperimentSpec spec;
    spec.name = "golden-table4";
    for (const auto &row : rows)
        spec.variants.push_back(row.technique);

    const auto sweep = SweepRunner().run(
        spec, [&rows](const exp::GridPoint &pt) {
            exp::PointResult res;
            res.point = pt;
            res.extras.emplace_back(
                "wake_ns", core::schemeWakeNs(rows, pt.variant));
            return res;
        });

    auto wake = [&](const char *technique) {
        return sweep.at({.variant = technique})
            .extras.front()
            .second;
    };

    // The published anchors.
    EXPECT_DOUBLE_EQ(wake("MAPG [102]"), 10.0);
    EXPECT_DOUBLE_EQ(wake("IChannels [35]"), 15.0);

    // AW's wake-up comes from the live controller model: ~78 ns,
    // slower than the AVX-only gates but within one order of
    // magnitude -- the paper's Table 4 argument.
    const double aw = wake("AW (This work)");
    EXPECT_NEAR(aw, 78.0, 8.0);
    EXPECT_GT(aw, wake("IChannels [35]"));
    EXPECT_LT(aw, 10.0 * wake("IChannels [35]"));
}

} // namespace
