/**
 * @file
 * Integration tests: whole-system behaviours that the paper's
 * evaluation sections report, checked end to end across modules.
 */

#include <gtest/gtest.h>

#include "analysis/power_model.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;
using namespace aw::sim;
using cstate::CStateId;

RunResult
runCfg(const ServerConfig &cfg,
       const workload::WorkloadProfile &profile, double qps,
       double seconds = 0.5)
{
    ServerSim srv(cfg, profile, qps);
    return srv.run(fromSec(seconds), fromSec(seconds / 10.0));
}

TEST(Integration, MemcachedAwSavingsShapeAcrossLoad)
{
    // Fig 8b: savings are largest at low load and shrink with
    // load, staying clearly positive at peak.
    const auto profile = workload::WorkloadProfile::memcached();
    double prev_savings = 1.0;
    for (const double qps : {50e3, 200e3, 500e3}) {
        const auto base = runCfg(ServerConfig::baseline(), profile,
                                 qps);
        const auto agile = runCfg(ServerConfig::awBaseline(),
                                  profile, qps);
        const double savings =
            1.0 - agile.avgCorePower / base.avgCorePower;
        EXPECT_GT(savings, 0.04) << "qps=" << qps;
        EXPECT_LT(savings, prev_savings + 0.03) << "qps=" << qps;
        prev_savings = savings;
    }
}

TEST(Integration, AnalyticalModelAgreesWithAwSimulation)
{
    // The paper estimates AW power analytically from baseline
    // residencies (Eq. 4). Our simulator can actually run AW --
    // the two must agree.
    const auto profile = workload::WorkloadProfile::memcached();
    const auto base =
        runCfg(ServerConfig::baseline(), profile, 100e3);
    const auto agile =
        runCfg(ServerConfig::awBaseline(), profile, 100e3);

    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        StatePowers::fromModels(aw_model.ppa()));
    const double est_savings =
        model.awSavingsVsMeasured(base.residency,
                                  base.avgCorePower);
    const double sim_savings =
        1.0 - agile.avgCorePower / base.avgCorePower;
    EXPECT_NEAR(est_savings, sim_savings, 0.05);
}

TEST(Integration, MysqlBaselineReachesDeepC6)
{
    // Fig 12a: >=40% C6 residency at every MySQL rate level.
    const auto profile = workload::WorkloadProfile::mysql();
    for (const double qps : profile.rateLevels()) {
        const auto r = runCfg(ServerConfig::legacyC1C6(), profile,
                              qps, 3.0);
        EXPECT_GE(r.residency.shareOf(CStateId::C6), 0.35)
            << "qps=" << qps;
    }
}

TEST(Integration, MysqlDisablingC6ImprovesLatency)
{
    // Fig 12c: 4-10% latency improvement from disabling C6.
    const auto profile = workload::WorkloadProfile::mysql();
    const double qps = profile.rateLevels()[1];
    const auto with_c6 =
        runCfg(ServerConfig::legacyC1C6(), profile, qps, 3.0);
    const auto no_c6 =
        runCfg(ServerConfig::legacyC1Only(), profile, qps, 3.0);
    EXPECT_LT(no_c6.avgLatencyUs, with_c6.avgLatencyUs);
    EXPECT_LT(no_c6.p99LatencyUs, with_c6.p99LatencyUs);
}

TEST(Integration, MysqlAwRecoversPowerVsC6Disabled)
{
    // Fig 12d: 22-56% average power reduction from C6A vs the
    // C6-disabled configuration.
    const auto profile = workload::WorkloadProfile::mysql();
    const double qps = profile.rateLevels()[0];
    const auto no_c6 =
        runCfg(ServerConfig::legacyC1Only(), profile, qps, 3.0);
    const auto agile =
        runCfg(ServerConfig::awC6aOnly(), profile, qps, 3.0);
    const double savings =
        1.0 - agile.avgCorePower / no_c6.avgCorePower;
    EXPECT_GT(savings, 0.20);
    EXPECT_LT(savings, 0.70);
}

TEST(Integration, KafkaLowRateLivesInC6)
{
    // Fig 13a: >60% C6 residency at the low rate.
    const auto profile = workload::WorkloadProfile::kafka();
    const auto r = runCfg(ServerConfig::legacyC1C6(), profile,
                          profile.rateLevels()[0], 2.0);
    EXPECT_GT(r.residency.shareOf(CStateId::C6), 0.5);
}

TEST(Integration, KafkaHighRateAvoidsC6)
{
    const auto profile = workload::WorkloadProfile::kafka();
    const auto r = runCfg(ServerConfig::legacyC1C6(), profile,
                          profile.rateLevels()[1], 1.0);
    EXPECT_LT(r.residency.shareOf(CStateId::C6), 0.10);
}

TEST(Integration, TurboOnlyHelpsWithLowPowerIdleStates)
{
    // The Sec 7.3 interaction: with C1-only idle (1.44 W), Turbo
    // cannot accrue thermal credit, so enabling it changes nothing;
    // with C6A the credit flows and latency improves.
    const auto profile = workload::WorkloadProfile::memcached();
    const double qps = 300e3;

    const auto nt_c1 =
        runCfg(ServerConfig::ntNoC6NoC1e(), profile, qps);
    const auto t_c1 =
        runCfg(ServerConfig::tNoC6NoC1e(), profile, qps);
    EXPECT_NEAR(t_c1.avgLatencyUs, nt_c1.avgLatencyUs,
                nt_c1.avgLatencyUs * 0.02);

    const auto nt_aw =
        runCfg(ServerConfig::ntAwNoC6NoC1e(), profile, qps);
    const auto t_aw =
        runCfg(ServerConfig::tAwNoC6NoC1e(), profile, qps);
    EXPECT_LT(t_aw.avgLatencyUs, nt_aw.avgLatencyUs * 0.99);
}

TEST(Integration, AwMatchesBestTunedLatencyAtLowestPower)
{
    // Fig 10's punchline at one load point.
    const auto profile = workload::WorkloadProfile::memcached();
    const double qps = 200e3;
    const auto nt_base =
        runCfg(ServerConfig::ntBaseline(), profile, qps);
    const auto nt_tuned =
        runCfg(ServerConfig::ntNoC6NoC1e(), profile, qps);
    const auto nt_aw =
        runCfg(ServerConfig::ntAwNoC6NoC1e(), profile, qps);

    // Latency within ~2% of the aggressive tuning.
    EXPECT_LT(nt_aw.avgLatencyUs, nt_tuned.avgLatencyUs * 1.02);
    // Power below every legacy configuration.
    EXPECT_LT(nt_aw.avgCorePower, nt_tuned.avgCorePower);
    EXPECT_LT(nt_aw.avgCorePower, nt_base.avgCorePower);
}

TEST(Integration, SnoopWorstCaseCostsAboutElevenPoints)
{
    // Sec 7.5: a 100% idle core saves ~79% (C6A vs C1) without
    // snoops and ~68% when serving snoops all the time.
    const double p_c1 = 1.44, p_c6a = 0.30;
    const double no_snoop = (p_c1 - p_c6a) / p_c1;
    EXPECT_NEAR(no_snoop, 0.79, 0.01);
    const double p_c1_snoop = p_c1 + 0.05;
    const double p_c6a_snoop = p_c6a + 0.12 + 0.05;
    const double with_snoop =
        (p_c1_snoop - p_c6a_snoop) / p_c1_snoop;
    EXPECT_NEAR(with_snoop, 0.68, 0.01);
    EXPECT_NEAR(no_snoop - with_snoop, 0.11, 0.015);
}

TEST(Integration, IdleServerPowerOrderingAcrossConfigs)
{
    // At a trickle load the config ordering must match the
    // C-state power ordering: AW < baseline(C6-capable) < C1-only.
    const auto profile = workload::WorkloadProfile::memcached();
    const double qps = 5e3;
    const auto c1_only =
        runCfg(ServerConfig::ntNoC6NoC1e(), profile, qps, 1.0);
    const auto base =
        runCfg(ServerConfig::ntBaseline(), profile, qps, 1.0);
    const auto agile =
        runCfg(ServerConfig::ntAwNoC6NoC1e(), profile, qps, 1.0);
    EXPECT_LT(base.avgCorePower, c1_only.avgCorePower);
    EXPECT_LT(agile.avgCorePower, c1_only.avgCorePower);
}

TEST(Integration, EndToEndDegradationDilutedByNetwork)
{
    // Fig 8c: end-to-end (client) degradation is negligible
    // because the 117 us network constant dominates.
    const auto profile = workload::WorkloadProfile::memcached();
    const auto base =
        runCfg(ServerConfig::baseline(), profile, 100e3);
    const auto d = analysis::awLatencyDegradation(
        base.avgLatencyUs, 7.4, 117.0, 0.4,
        base.transitionsPerRequest);
    EXPECT_LT(d.worstCaseE2eFrac, 0.01);
    EXPECT_LT(d.expectedE2eFrac, d.worstCaseE2eFrac + 1e-12);
}

} // namespace
