/**
 * @file
 * Unit tests for the SRAM sleep-mode model.
 */

#include <gtest/gtest.h>

#include "power/sram_sleep.hh"

namespace {

using namespace aw::power;

TEST(SramSleep, SkylakeAnchors)
{
    const auto sleep = SramSleepMode::skylakeL1L2();
    EXPECT_NEAR(asMilliwatts(sleep.sleepPowerAtP1()), 55.0, 1e-9);
    EXPECT_NEAR(asMilliwatts(sleep.sleepPowerAtPn()), 40.0, 1e-9);
    EXPECT_NEAR(sleep.capacityBytes(), 1.1 * 1024 * 1024, 1.0);
}

TEST(SramSleep, PnIsMoreEfficientThanP1)
{
    const auto sleep = SramSleepMode::skylakeL1L2();
    EXPECT_LT(sleep.sleepPowerAtPn(), sleep.sleepPowerAtP1());
}

TEST(SramSleep, SettingsMonotonicallyIncreaseLeakage)
{
    const auto sleep = SramSleepMode::skylakeL1L2();
    for (unsigned s = 1; s < SramSleepMode::kSettings; ++s) {
        EXPECT_GT(sleep.sleepPowerAtSetting(s),
                  sleep.sleepPowerAtSetting(s - 1));
    }
    // Setting 0 equals the calibrated anchor.
    EXPECT_DOUBLE_EQ(sleep.sleepPowerAtSetting(0),
                     sleep.sleepPowerAtP1());
    EXPECT_DOUBLE_EQ(sleep.sleepPowerAtSetting(0, true),
                     sleep.sleepPowerAtPn());
}

TEST(SramSleepDeathTest, SettingOutOfRange)
{
    const auto sleep = SramSleepMode::skylakeL1L2();
    EXPECT_DEATH(sleep.sleepPowerAtSetting(7), "setting");
}

TEST(SramSleep, LvrEfficiencyIsVoltageRatio)
{
    EXPECT_DOUBLE_EQ(SramSleepMode::lvrEfficiency(0.6, 1.0), 0.6);
    EXPECT_DOUBLE_EQ(SramSleepMode::lvrEfficiency(0.6, 0.75), 0.8);
    EXPECT_DOUBLE_EQ(SramSleepMode::lvrEfficiency(0.5, 0.0), 0.0);
}

TEST(SramSleep, FromReferenceReproducesPaperDerivation)
{
    // Paper derivation: 2.5 MB 22 nm slice -> 1.1 MB 14 nm arrays.
    // Pick the reference power so the result lands at 55 mW:
    // ref * (1.1/2.5) * 0.7 = 55 mW  =>  ref ~ 178.6 mW.
    const Watts ref = milliwatts(55.0) / (1.1 / 2.5) / 0.7;
    const auto sleep = SramSleepMode::fromReference(
        ref, 2.5 * 1024 * 1024, 1.1 * 1024 * 1024,
        LeakageScaling::paper22To14(), 40.0 / 55.0);
    EXPECT_NEAR(asMilliwatts(sleep.sleepPowerAtP1()), 55.0, 0.01);
    EXPECT_NEAR(asMilliwatts(sleep.sleepPowerAtPn()), 40.0, 0.01);
}

TEST(SramSleepDeathTest, FromReferenceRejectsBadCapacity)
{
    EXPECT_DEATH(SramSleepMode::fromReference(
                     0.1, 0.0, 1.0, LeakageScaling::paper22To14(),
                     0.7),
                 "capacit");
}

TEST(SramSleep, TransitionCycleCounts)
{
    EXPECT_EQ(SramSleepMode::kEntryCycles, 3u);
    EXPECT_EQ(SramSleepMode::kExitCycles, 2u);
}

TEST(SramSleep, AreaOverheadMatchesGates)
{
    EXPECT_DOUBLE_EQ(SramSleepMode::kAreaOverhead.lo, 0.02);
    EXPECT_DOUBLE_EQ(SramSleepMode::kAreaOverhead.hi, 0.06);
}

} // namespace
