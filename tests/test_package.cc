/**
 * @file
 * Unit tests for the package C-state (PC-state) extension.
 */

#include <gtest/gtest.h>

#include "server/package.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;
using namespace aw::sim;
using cstate::CStateId;

TEST(PackageModel, StartsInPc0)
{
    PackageCStateModel pkg;
    EXPECT_EQ(pkg.state(), PkgCState::PC0);
    EXPECT_DOUBLE_EQ(pkg.uncorePower(), 18.0);
}

TEST(PackageModel, AllIdleDropsToPc2)
{
    PackageCStateModel pkg;
    pkg.update(fromUs(10.0), true, false);
    EXPECT_EQ(pkg.state(), PkgCState::PC2);
    EXPECT_NEAR(pkg.uncorePower(), 18.0 * 0.6, 1e-9);
}

TEST(PackageModel, Pc6RequiresHysteresis)
{
    PackageCStateModel pkg;
    pkg.update(fromUs(10.0), true, true);
    EXPECT_EQ(pkg.state(), PkgCState::PC2); // not yet
    // Re-evaluate after the 200 us dwell.
    pkg.update(fromUs(10.0) + pkg.params().pc6Hysteresis, true,
               true);
    EXPECT_EQ(pkg.state(), PkgCState::PC6);
    EXPECT_NEAR(pkg.uncorePower(), 18.0 * 0.25, 1e-9);
}

TEST(PackageModel, ActivityResetsDwellClock)
{
    PackageCStateModel pkg;
    pkg.update(fromUs(10.0), true, true);
    // A wake in between restarts the dwell.
    pkg.update(fromUs(100.0), false, false);
    EXPECT_EQ(pkg.state(), PkgCState::PC0);
    pkg.update(fromUs(110.0), true, true);
    pkg.update(fromUs(250.0), true, true); // only 140 us of dwell
    EXPECT_EQ(pkg.state(), PkgCState::PC2);
}

TEST(PackageModel, OnlyPc6PaysExitLatency)
{
    PackageCStateModel pkg;
    EXPECT_EQ(pkg.exitLatency(), Tick(0));
    pkg.update(0, true, true);
    pkg.update(pkg.params().pc6Hysteresis, true, true);
    ASSERT_EQ(pkg.state(), PkgCState::PC6);
    EXPECT_EQ(pkg.exitLatency(), pkg.params().pc6ExitLatency);
}

TEST(PackageModel, QualifyingStates)
{
    EXPECT_TRUE(PackageCStateModel::qualifiesPc6(CStateId::C6));
    EXPECT_TRUE(PackageCStateModel::qualifiesPc6(CStateId::C6A));
    EXPECT_TRUE(PackageCStateModel::qualifiesPc6(CStateId::C6AE));
    EXPECT_FALSE(PackageCStateModel::qualifiesPc6(CStateId::C1));
    EXPECT_FALSE(PackageCStateModel::qualifiesPc6(CStateId::C1E));
    EXPECT_FALSE(PackageCStateModel::qualifiesPc6(CStateId::C0));
}

TEST(PackageModel, ResidencyAccounting)
{
    PackageCStateModel pkg;
    pkg.reset(0);
    pkg.update(fromUs(100.0), true, false); // PC0 for 100 us
    pkg.update(fromUs(300.0), false, false); // PC2 for 200 us
    pkg.noteStateSince(fromUs(400.0)); // PC0 again for 100 us
    EXPECT_NEAR(pkg.residencyShare(PkgCState::PC0, fromUs(400.0)),
                0.5, 1e-9);
    EXPECT_NEAR(pkg.residencyShare(PkgCState::PC2, fromUs(400.0)),
                0.5, 1e-9);
}

TEST(PackageModel, Names)
{
    EXPECT_STREQ(name(PkgCState::PC0), "PC0");
    EXPECT_STREQ(name(PkgCState::PC6), "PC6");
}

TEST(PackageIntegration, DisabledKeepsUncoreConstant)
{
    ServerSim srv(ServerConfig::baseline(),
                  workload::WorkloadProfile::memcached(), 50e3);
    const auto r = srv.run(fromSec(0.3), fromMs(30.0));
    EXPECT_DOUBLE_EQ(r.avgUncorePower, 18.0);
    EXPECT_DOUBLE_EQ(r.pkgResidency[0], 1.0);
}

TEST(PackageIntegration, AwEnablesDeepPackageSleepAtLowLoad)
{
    // With AW states on every core (deep by construction) and a
    // trickle load, the package should spend real time in PC6 --
    // the AgilePkgC-direction synergy.
    ServerConfig cfg = ServerConfig::awBaseline();
    cfg.packageCStatesEnabled = true;
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                  2e3);
    const auto r = srv.run(fromSec(0.5), fromMs(50.0));
    const double pc6 =
        r.pkgResidency[static_cast<std::size_t>(PkgCState::PC6)];
    EXPECT_GT(pc6, 0.2);
    EXPECT_LT(r.avgUncorePower, 18.0);
}

TEST(PackageIntegration, LegacyC1IdleCannotReachPc6)
{
    // C1/C1E don't qualify: the package stays in PC0/PC2.
    ServerConfig cfg = ServerConfig::ntNoC6();
    cfg.packageCStatesEnabled = true;
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                  2e3);
    const auto r = srv.run(fromSec(0.5), fromMs(50.0));
    EXPECT_DOUBLE_EQ(
        r.pkgResidency[static_cast<std::size_t>(PkgCState::PC6)],
        0.0);
    // But PC2 is reachable.
    EXPECT_GT(
        r.pkgResidency[static_cast<std::size_t>(PkgCState::PC2)],
        0.0);
}

TEST(PackageIntegration, HighLoadStaysPc0)
{
    ServerConfig cfg = ServerConfig::awBaseline();
    cfg.packageCStatesEnabled = true;
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                  400e3);
    const auto r = srv.run(fromSec(0.3), fromMs(30.0));
    EXPECT_GT(
        r.pkgResidency[static_cast<std::size_t>(PkgCState::PC0)],
        0.9);
}

} // namespace
