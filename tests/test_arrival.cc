/**
 * @file
 * Unit tests for the arrival processes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/arrival.hh"

namespace {

using namespace aw::workload;
using namespace aw::sim;

double
sampleMeanGapSec(ArrivalProcess &arr, int n, std::uint64_t seed = 1)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += toSec(arr.nextGap(rng));
    return sum / n;
}

double
sampleCvOfGaps(ArrivalProcess &arr, int n, std::uint64_t seed = 1)
{
    Rng rng(seed);
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = toSec(arr.nextGap(rng));
        sum += g;
        sumsq += g * g;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    return std::sqrt(std::max(0.0, var)) / mean;
}

TEST(Poisson, MeanGapIsInverseRate)
{
    PoissonArrivals arr(1000.0);
    EXPECT_NEAR(sampleMeanGapSec(arr, 100000), 1e-3, 5e-5);
    EXPECT_DOUBLE_EQ(arr.ratePerSec(), 1000.0);
}

TEST(Poisson, GapCvIsOne)
{
    PoissonArrivals arr(1000.0);
    EXPECT_NEAR(sampleCvOfGaps(arr, 100000), 1.0, 0.05);
}

TEST(PoissonDeathTest, RejectsNonPositiveRate)
{
    EXPECT_DEATH(PoissonArrivals(0.0), "positive");
}

TEST(Deterministic, ConstantGap)
{
    DeterministicArrivals arr(100.0);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(arr.nextGap(rng), fromMs(10.0));
}

TEST(Mmpp, AverageRateMatchesRequest)
{
    // Burst 8x the base with phases shaped like the Kafka profile.
    const double base = 1000.0;
    MmppArrivals arr(8.0 * base, 0.0, fromMs(2.0), fromMs(14.0));
    // avg = 8*base * 2/16 = base.
    EXPECT_NEAR(arr.ratePerSec(), base, 1e-6);
    EXPECT_NEAR(sampleMeanGapSec(arr, 200000), 1.0 / base,
                0.05 / base);
}

TEST(Mmpp, BurstierThanPoisson)
{
    MmppArrivals bursty(8000.0, 0.0, fromMs(2.0), fromMs(14.0));
    PoissonArrivals smooth(1000.0);
    EXPECT_GT(sampleCvOfGaps(bursty, 100000),
              sampleCvOfGaps(smooth, 100000) * 1.5);
}

TEST(Mmpp, SilentQuietPhaseStillProgresses)
{
    MmppArrivals arr(100.0, 0.0, fromMs(1.0), fromMs(1.0));
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(arr.nextGap(rng), Tick(0));
}

TEST(Mmpp, MixedRatesAverage)
{
    MmppArrivals arr(2000.0, 500.0, fromMs(5.0), fromMs(5.0));
    EXPECT_NEAR(arr.ratePerSec(), 1250.0, 1e-6);
}

TEST(MmppDeathTest, ValidatesArguments)
{
    EXPECT_DEATH(MmppArrivals(0.0, 0.0, fromMs(1.0), fromMs(1.0)),
                 "rates");
    EXPECT_DEATH(MmppArrivals(10.0, 0.0, 0, fromMs(1.0)),
                 "phase");
}

} // namespace
