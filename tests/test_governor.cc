/**
 * @file
 * Unit tests for the idle predictor and governor.
 */

#include <gtest/gtest.h>

#include "cstate/governor.hh"

namespace {

using namespace aw::cstate;
using namespace aw::sim;

TEST(Predictor, UnseededPredictsZero)
{
    IdlePredictor p;
    EXPECT_FALSE(p.seeded());
    EXPECT_EQ(p.predict(), Tick(0));
}

TEST(Predictor, FirstObservationSeedsEwma)
{
    IdlePredictor p;
    p.observe(fromUs(100.0));
    EXPECT_TRUE(p.seeded());
    EXPECT_EQ(p.predict(), fromUs(100.0));
}

TEST(Predictor, TakesMinOfEwmaAndLast)
{
    IdlePredictor p(0.25);
    // Long history then a short interval: prediction follows the
    // short one (conservatism against irregular streams).
    for (int i = 0; i < 20; ++i)
        p.observe(fromUs(1000.0));
    p.observe(fromUs(10.0));
    EXPECT_LE(p.predict(), fromUs(10.0));
}

TEST(Predictor, EwmaCapsAfterOneLongOutlier)
{
    IdlePredictor p(0.25);
    for (int i = 0; i < 20; ++i)
        p.observe(fromUs(10.0));
    p.observe(fromUs(10000.0));
    // Last is long but the EWMA still remembers short intervals.
    EXPECT_LT(p.predict(), fromUs(3000.0));
}

TEST(Predictor, ResetClears)
{
    IdlePredictor p;
    p.observe(fromUs(50.0));
    p.reset();
    EXPECT_FALSE(p.seeded());
    EXPECT_EQ(p.predict(), Tick(0));
}

TEST(Predictor, ResetDiscardsPreResetObservations)
{
    // Regression: reset() used to leave the old samples in the
    // window. A post-reset predictor must behave exactly like a
    // fresh one under the same observations -- no pre-reset history
    // may leak into any prediction.
    IdlePredictor stale;
    for (int i = 0; i < 20; ++i)
        stale.observe(fromMs(10.0)); // long pre-reset history
    stale.reset();

    IdlePredictor fresh;
    for (int i = 0; i < 12; ++i) {
        const Tick obs = fromUs(30.0 * (1 + i % 3));
        stale.observe(obs);
        fresh.observe(obs);
        EXPECT_EQ(stale.predict(), fresh.predict()) << "after "
                                                    << i + 1
                                                    << " samples";
    }
}

TEST(Governor, PicksDeepestAffordableState)
{
    const MenuGovernor gov(CStateConfig::legacyBaseline());
    // Predicted 1 us: only C1's 2 us target is above; pick C1
    // (the shallowest) as the fallback.
    EXPECT_EQ(gov.selectFor(fromUs(1.0)), CStateId::C1);
    // 5 us: C1 affordable, C1E (20 us) not.
    EXPECT_EQ(gov.selectFor(fromUs(5.0)), CStateId::C1);
    // 50 us: C1E affordable, C6 (600 us) not.
    EXPECT_EQ(gov.selectFor(fromUs(50.0)), CStateId::C1E);
    // 1 ms: C6.
    EXPECT_EQ(gov.selectFor(fromMs(1.0)), CStateId::C6);
}

TEST(Governor, AwConfigMapsLikeLegacy)
{
    const MenuGovernor gov(CStateConfig::aw());
    EXPECT_EQ(gov.selectFor(fromUs(5.0)), CStateId::C6A);
    EXPECT_EQ(gov.selectFor(fromUs(50.0)), CStateId::C6AE);
    EXPECT_EQ(gov.selectFor(fromMs(1.0)), CStateId::C6);
}

TEST(Governor, RespectsDisabledStates)
{
    const MenuGovernor gov(CStateConfig::legacyNoC6());
    EXPECT_EQ(gov.selectFor(fromMs(10.0)), CStateId::C1E);

    const MenuGovernor c1only(CStateConfig::legacyNoC6NoC1E());
    EXPECT_EQ(c1only.selectFor(fromMs(10.0)), CStateId::C1);
}

TEST(Governor, NoIdleStatesSelectsC0)
{
    const MenuGovernor gov{CStateConfig()};
    EXPECT_EQ(gov.selectFor(fromMs(10.0)), CStateId::C0);
}

TEST(Governor, SelectUsesPredictor)
{
    MenuGovernor gov(CStateConfig::legacyBaseline());
    // Unseeded: prediction 0 -> shallowest.
    EXPECT_EQ(gov.select(0), CStateId::C1);
    for (int i = 0; i < 30; ++i)
        gov.observeIdle(fromMs(2.0));
    EXPECT_EQ(gov.select(0), CStateId::C6);
}

TEST(Governor, IrregularTrafficAvoidsDeepStates)
{
    // The Sec 1 story: irregular arrivals keep the predictor
    // conservative, so cores rarely pick C6.
    MenuGovernor gov(CStateConfig::legacyBaseline());
    for (int i = 0; i < 10; ++i) {
        gov.observeIdle(fromMs(2.0));
        gov.observeIdle(fromUs(30.0));
    }
    EXPECT_NE(gov.select(0), CStateId::C6);
}

/** Property: the selected state's target residency never exceeds
 *  the prediction unless it is the shallowest fallback. */
class GovernorSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GovernorSweep, TargetResidencyRespected)
{
    const Tick predicted = fromUs(GetParam());
    const MenuGovernor gov(CStateConfig::legacyBaseline());
    const CStateId chosen = gov.selectFor(predicted);
    if (chosen != gov.config().shallowestEnabled()) {
        EXPECT_LE(descriptor(chosen).targetResidency, predicted);
    }
    // And no deeper enabled state would also fit.
    for (const auto id : gov.config().enabledStates()) {
        if (descriptor(id).depth > descriptor(chosen).depth)
            EXPECT_GT(descriptor(id).targetResidency, predicted);
    }
}

INSTANTIATE_TEST_SUITE_P(PredictionSweep, GovernorSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 10.0, 19.0,
                                           20.0, 100.0, 599.0, 600.0,
                                           5000.0));

} // namespace
