/**
 * @file
 * Tests for the power-model validation machinery (Sec 6.3).
 */

#include <gtest/gtest.h>

#include "analysis/validation.hh"

namespace {

using namespace aw;
using namespace aw::analysis;

TEST(ValidationPoint, AccuracyMath)
{
    ValidationPoint p;
    p.measured = 2.0;
    p.estimated = 1.9;
    EXPECT_NEAR(p.accuracyPercent(), 95.0, 1e-9);
    p.estimated = 2.1;
    EXPECT_NEAR(p.accuracyPercent(), 95.0, 1e-9);
    p.estimated = 2.0;
    EXPECT_NEAR(p.accuracyPercent(), 100.0, 1e-9);
}

TEST(ValidationPoint, ZeroMeasuredIsZeroAccuracy)
{
    ValidationPoint p;
    p.measured = 0.0;
    p.estimated = 1.0;
    EXPECT_DOUBLE_EQ(p.accuracyPercent(), 0.0);
}

TEST(ValidationSummary, MeanAndWorst)
{
    ValidationSummary s;
    ValidationPoint a, b;
    a.measured = 2.0;
    a.estimated = 1.9; // 95%
    b.measured = 2.0;
    b.estimated = 1.98; // 99%
    s.points = {a, b};
    EXPECT_NEAR(s.meanAccuracyPercent(), 97.0, 1e-9);
    EXPECT_NEAR(s.worstAccuracyPercent(), 95.0, 1e-9);
}

TEST(ValidationSummary, EmptyIsZero)
{
    ValidationSummary s;
    EXPECT_DOUBLE_EQ(s.meanAccuracyPercent(), 0.0);
    EXPECT_DOUBLE_EQ(s.worstAccuracyPercent(), 0.0);
}

TEST(Validation, ModelTracksSimulatedMeasurement)
{
    // The analytical Eq. 2 estimate from residencies should land
    // close to the energy-meter "measurement": the gap is the
    // power spent inside transitions, which the analytical model
    // folds into C0. Validation runs at fixed frequency (Turbo
    // off) like the paper's Sec 6.3 setup; with Turbo on, Eq. 4's
    // measured-denominator form absorbs the boost-power variation
    // instead. Paper reports >=94% accuracy; require 90%+ here.
    server::ServerSim srv(server::ServerConfig::ntBaseline(),
                          workload::WorkloadProfile::nginx(), 40e3);
    const auto run = srv.run(sim::fromSec(0.5), sim::fromMs(50.0));
    core::AwCoreModel aw_model;
    const CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    const auto point = validateRun(model, run);
    EXPECT_GT(point.accuracyPercent(), 90.0);
    EXPECT_GT(point.measured, 0.0);
    EXPECT_GT(point.estimated, 0.0);
}

TEST(Validation, SummaryCoversAllRateLevels)
{
    auto profile = workload::WorkloadProfile::nginx();
    server::ServerConfig cfg = server::ServerConfig::ntBaseline();
    const auto summary = validateWorkload(cfg, profile);
    EXPECT_EQ(summary.workload, "nginx");
    EXPECT_EQ(summary.points.size(), profile.rateLevels().size());
    EXPECT_GT(summary.meanAccuracyPercent(), 90.0);
}

} // namespace
