/**
 * @file
 * Unit tests for the per-core state machine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cstate/governors.hh"
#include "server/core_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;
using namespace aw::sim;

struct CoreHarness
{
    explicit CoreHarness(ServerConfig config,
                         double per_core_rate = 5000.0)
        : cfg(std::move(config)),
          profile(workload::WorkloadProfile::memcached()),
          governor(cstate::makeGovernor(cfg.governor, cfg.cstates)),
          core(simr, cfg, *governor, /*freq_proto=*/nullptr,
               aw_model, profile, per_core_rate, 0,
               [this](const workload::Request &req) {
                   latencies.push_back(toUs(req.serverLatency()));
               })
    {
    }

    Simulator simr;
    ServerConfig cfg;
    core::AwCoreModel aw_model;
    workload::WorkloadProfile profile;
    std::unique_ptr<cstate::GovernorPolicy> governor;
    std::vector<double> latencies;
    CoreSim core;
};

TEST(CoreSim, ServesRequests)
{
    CoreHarness h(ServerConfig::baseline());
    h.core.start();
    h.simr.run(fromSec(0.5));
    EXPECT_GT(h.core.requestsCompleted(), 1000u);
    EXPECT_EQ(h.latencies.size(), h.core.requestsCompleted());
}

TEST(CoreSim, ResidencySharesSumToOne)
{
    CoreHarness h(ServerConfig::baseline());
    h.core.start();
    h.simr.run(fromSec(0.5));
    EXPECT_NEAR(h.core.residency().totalShare(), 1.0, 1e-6);
}

TEST(CoreSim, EnergyIsPositiveAndBounded)
{
    CoreHarness h(ServerConfig::baseline());
    h.core.start();
    h.simr.run(fromSec(0.5));
    const double avg = h.core.averagePower();
    // Between the deepest idle power and the boost power.
    EXPECT_GT(avg, 0.05);
    EXPECT_LT(avg, 7.5);
}

TEST(CoreSim, AwFrequencyDegradationApplied)
{
    CoreHarness legacy(ServerConfig::baseline());
    CoreHarness agile(ServerConfig::awBaseline());
    EXPECT_DOUBLE_EQ(
        legacy.core.effectiveBaseFrequency().gigahertz(), 2.2);
    EXPECT_NEAR(agile.core.effectiveBaseFrequency().gigahertz(),
                2.2 * 0.99, 1e-9);
}

TEST(CoreSim, AwUsesAwStates)
{
    CoreHarness h(ServerConfig::awBaseline());
    h.core.start();
    h.simr.run(fromSec(0.5));
    const auto res = h.core.residency();
    EXPECT_EQ(res.shareOf(cstate::CStateId::C1), 0.0);
    EXPECT_GT(res.shareOf(cstate::CStateId::C6A) +
                  res.shareOf(cstate::CStateId::C6AE),
              0.0);
}

TEST(CoreSim, LegacyNeverUsesAwStates)
{
    CoreHarness h(ServerConfig::baseline());
    h.core.start();
    h.simr.run(fromSec(0.5));
    const auto res = h.core.residency();
    EXPECT_EQ(res.shareOf(cstate::CStateId::C6A), 0.0);
    EXPECT_EQ(res.shareOf(cstate::CStateId::C6AE), 0.0);
    EXPECT_GT(res.shareOf(cstate::CStateId::C1), 0.0);
}

TEST(CoreSim, AwDrawsLessPowerThanLegacy)
{
    CoreHarness legacy(ServerConfig::baseline());
    CoreHarness agile(ServerConfig::awBaseline());
    legacy.core.start();
    agile.core.start();
    legacy.simr.run(fromSec(0.5));
    agile.simr.run(fromSec(0.5));
    EXPECT_LT(agile.core.averagePower(),
              legacy.core.averagePower());
}

TEST(CoreSim, ResetStatsClearsWindow)
{
    CoreHarness h(ServerConfig::baseline());
    h.core.start();
    h.simr.run(fromSec(0.2));
    h.core.resetStats();
    EXPECT_EQ(h.core.requestsCompleted(), 0u);
    h.simr.run(fromSec(0.4));
    EXPECT_GT(h.core.requestsCompleted(), 0u);
    EXPECT_NEAR(h.core.residency().totalShare(), 1.0, 1e-6);
}

TEST(CoreSim, MispredictionsHappenUnderIrregularLoad)
{
    // With C-state entry taking ~1 us and Poisson arrivals, some
    // arrivals land during entry.
    CoreHarness h(ServerConfig::baseline(), 50000.0);
    h.core.start();
    h.simr.run(fromSec(0.5));
    EXPECT_GT(h.core.mispredictedEntries(), 0u);
}

TEST(CoreSim, LatenciesIncludeWakePenalty)
{
    // At a very low rate every request finds the core idle; its
    // latency must be at least service + C-state exit.
    CoreHarness h(ServerConfig::baseline(), 100.0);
    h.core.start();
    h.simr.run(fromSec(2.0));
    ASSERT_FALSE(h.latencies.empty());
    double min_lat = 1e18;
    for (const double l : h.latencies)
        min_lat = std::min(min_lat, l);
    // Exit from any legacy state is >= ~1 us of software path.
    EXPECT_GT(min_lat, 1.0);
}

TEST(CoreSim, SnoopTrafficIncreasesIdlePower)
{
    ServerConfig quiet = ServerConfig::baseline();
    quiet.snoopRatePerSec = 0.0;
    ServerConfig noisy = ServerConfig::baseline();
    noisy.snoopRatePerSec = 200000.0;

    CoreHarness a(quiet, 100.0), b(noisy, 100.0);
    a.core.start();
    b.core.start();
    a.simr.run(fromSec(1.0));
    b.simr.run(fromSec(1.0));
    EXPECT_GT(b.core.averagePower(), a.core.averagePower());
}

TEST(CoreSim, PollModeWhenNoIdleStates)
{
    ServerConfig cfg = ServerConfig::baseline();
    cfg.cstates = cstate::CStateConfig(); // nothing enabled
    CoreHarness h(cfg, 1000.0);
    h.core.start();
    h.simr.run(fromSec(0.2));
    // Polling burns active power the whole time.
    EXPECT_NEAR(h.core.averagePower(), 4.0, 0.5);
    EXPECT_GT(h.core.requestsCompleted(), 0u);
}

/** Property: across all evaluation configs, the core completes
 *  work and keeps residency accounting consistent. */
class CoreSimConfigs
    : public ::testing::TestWithParam<ServerConfig (*)()>
{
};

TEST_P(CoreSimConfigs, InvariantsHold)
{
    CoreHarness h(GetParam()(), 20000.0);
    h.core.start();
    h.simr.run(fromSec(0.3));
    EXPECT_GT(h.core.requestsCompleted(), 0u);
    EXPECT_NEAR(h.core.residency().totalShare(), 1.0, 1e-6);
    EXPECT_GT(h.core.averagePower(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CoreSimConfigs,
    ::testing::Values(&ServerConfig::baseline,
                      &ServerConfig::awBaseline,
                      &ServerConfig::ntBaseline,
                      &ServerConfig::ntNoC6,
                      &ServerConfig::ntNoC6NoC1e,
                      &ServerConfig::ntAwNoC6NoC1e,
                      &ServerConfig::tNoC6,
                      &ServerConfig::tNoC6NoC1e,
                      &ServerConfig::tAwNoC6NoC1e,
                      &ServerConfig::legacyC1C6,
                      &ServerConfig::legacyC1Only,
                      &ServerConfig::awC6aOnly));

} // namespace
