/**
 * @file
 * Domain scenario: datacenter operational-cost planning (Sec 7.6).
 * Sweeps the Memcached load levels, computes the AgileWatts power
 * savings at each, and projects yearly fleet savings at a
 * configurable electricity price and PUE.
 */

#include <cstdio>

#include "analysis/cost_model.hh"
#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

int
main()
{
    using namespace aw;

    const auto profile = workload::WorkloadProfile::memcached();

    analysis::CostModel::Params params;
    params.usdPerKwh = 0.125;
    params.pue = 1.5; // typical enterprise datacenter
    params.servers = 100e3;
    const analysis::CostModel cost(params);

    std::printf("Yearly savings per %.0fK servers "
                "($%.3f/kWh, PUE %.1f)\n\n",
                params.servers / 1e3, params.usdPerKwh, params.pue);

    analysis::TableWriter table({"QPS", "baseline W/core",
                                 "AW W/core", "savings ($M/yr)"});
    for (const double qps : profile.rateLevels()) {
        server::ServerSim base(server::ServerConfig::baseline(),
                               profile, qps);
        const auto b = base.run();
        server::ServerSim agile(server::ServerConfig::awBaseline(),
                                profile, qps);
        const auto a = agile.run();

        // Whole-CPU savings: 10 cores per socket.
        const double usd = cost.yearlySavingsUsd(
            b.avgCorePower * 10.0, a.avgCorePower * 10.0);
        table.addRow({analysis::cell("%.0fK", qps / 1e3),
                      analysis::cell("%.3f", b.avgCorePower),
                      analysis::cell("%.3f", a.avgCorePower),
                      analysis::cell("%.2f", usd / 1e6)});
    }
    table.print();
    return 0;
}
