/**
 * @file
 * Domain scenario: datacenter operational-cost planning (Sec 7.6).
 * Sweeps the Memcached load levels, computes the AgileWatts power
 * savings at each, and projects yearly fleet savings at a
 * configurable electricity price and PUE.
 *
 * The power-capping extension then prices the *provisioning* side:
 * oversubscribed datacenters pay for provisioned watts, not just
 * consumed ones, and the cap subsystem's headline (docs/POWERCAP.md)
 * is that an AgileWatts fleet sustains a materially tighter package
 * cap than tuned C6 at the same tail latency -- provisioned capacity
 * that can be handed to more racks.
 */

#include <cstdio>

#include "analysis/cost_model.hh"
#include "analysis/table.hh"
#include "cluster/fleet.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

int
main()
{
    using namespace aw;

    const auto profile = workload::WorkloadProfile::memcached();

    analysis::CostModel::Params params;
    params.usdPerKwh = 0.125;
    params.pue = 1.5; // typical enterprise datacenter
    params.servers = 100e3;
    const analysis::CostModel cost(params);

    std::printf("Yearly savings per %.0fK servers "
                "($%.3f/kWh, PUE %.1f)\n\n",
                params.servers / 1e3, params.usdPerKwh, params.pue);

    analysis::TableWriter table({"QPS", "baseline W/core",
                                 "AW W/core", "savings ($M/yr)"});
    for (const double qps : profile.rateLevels()) {
        server::ServerSim base(server::ServerConfig::baseline(),
                               profile, qps);
        const auto b = base.run();
        server::ServerSim agile(server::ServerConfig::awBaseline(),
                                profile, qps);
        const auto a = agile.run();

        // Whole-CPU savings: 10 cores per socket.
        const double usd = cost.yearlySavingsUsd(
            b.avgCorePower * 10.0, a.avgCorePower * 10.0);
        table.addRow({analysis::cell("%.0fK", qps / 1e3),
                      analysis::cell("%.3f", b.avgCorePower),
                      analysis::cell("%.3f", a.avgCorePower),
                      analysis::cell("%.2f", usd / 1e6)});
    }
    table.print();

    // ---- power capping: price the tighter provisioning ----
    //
    // The GoldenBytesCap calibration: at ~1 ms p99 under a capped
    // flash-crowd-class load, the AW fleet holds 18 W/package where
    // the tuned-C6 fleet needs 22 W (throttle naps wake from C6A
    // almost for free, from legacy C6 at ~100 us apiece).
    auto cappedP99 = [&profile](const char *config, double cap_w) {
        cluster::FleetConfig fc;
        fc.servers = 4;
        fc.server = exp::configByName(config);
        fc.server.idlePromotion = true;
        fc.server.cap.capWatts = cap_w;
        fc.routing = "route-to-headroom";
        fc.seed = 42;
        fc.epochSeconds = 0.05;
        cluster::FleetSim fleet(fc, profile, 200e3);
        const auto r =
            fleet.run(sim::fromSec(0.3), sim::fromSec(0.03));
        return r.p99LatencyUs;
    };
    const double aw_cap = 18.0, legacy_cap = 22.0;
    const double aw_p99 = cappedP99("aw_c6a", aw_cap);
    const double legacy_p99 = cappedP99("c1c6", legacy_cap);

    // Amortized provisioned-capacity cost: ~$12.5/W of datacenter
    // build-out over a 10-year life (Barroso & Hoelzle's classic
    // planning number).
    const double usd_per_provisioned_watt_year = 1.25;
    const double sockets =
        params.servers * params.socketsPerServer;
    const double provision_usd = (legacy_cap - aw_cap) * sockets *
                                 usd_per_provisioned_watt_year;

    std::printf("\nPower capping: provisioning at equal tail "
                "latency\n\n");
    analysis::TableWriter cap_table(
        {"fleet", "cap (W/socket)", "p99 (us)"});
    cap_table.addRow({"tuned C6",
                      analysis::cell("%.0f", legacy_cap),
                      analysis::cell("%.0f", legacy_p99)});
    cap_table.addRow({"AgileWatts",
                      analysis::cell("%.0f", aw_cap),
                      analysis::cell("%.0f", aw_p99)});
    cap_table.print();
    std::printf("\n%.0f W/socket tighter provisioning x %.0fK "
                "sockets = $%.2fM/yr\n"
                "($%.2f per provisioned watt-year, amortized "
                "build-out)\n",
                legacy_cap - aw_cap, sockets / 1e3,
                provision_usd / 1e6,
                usd_per_provisioned_watt_year);
    return 0;
}
