/**
 * @file
 * Domain scenario: "should we manage our way to deep idle, or buy
 * hardware that makes it free?" -- an interactive-style lab that
 * replays the *same* recorded request trace under four strategies
 * and prints the power/latency frontier:
 *
 *   1. static dispatch, legacy C-states   (paper baseline)
 *   2. packing dispatch, legacy C-states  (CARB-style management)
 *   3. static dispatch, AgileWatts        (the paper's proposal)
 *   4. packing + AgileWatts + PC6         (everything combined)
 *
 * Uses the trace record/replay API so every strategy sees an
 * identical arrival sequence.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"

int
main()
{
    using namespace aw;

    const auto profile = workload::WorkloadProfile::memcached();
    const double qps = 100e3;

    // Record a trace once so all strategies see the same demand.
    auto source = profile.makeArrivals(qps);
    sim::Rng rng(2024);
    const auto trace =
        workload::ArrivalTrace::record(*source, rng, 200000);
    std::printf("recorded %zu arrivals spanning %.2f s "
                "(mean rate %.0f/s)\n\n",
                trace.size(), sim::toSec(trace.duration()),
                trace.meanRatePerSec());

    struct Strategy
    {
        const char *label;
        server::ServerConfig cfg;
    };
    std::vector<Strategy> strategies;
    {
        server::ServerConfig s = server::ServerConfig::ntBaseline();
        strategies.push_back({"static + legacy", s});
    }
    {
        server::ServerConfig s = server::ServerConfig::ntBaseline();
        s.dispatch = server::DispatchPolicy::Packing;
        strategies.push_back({"packing + legacy", s});
    }
    {
        server::ServerConfig s =
            server::ServerConfig::ntAwNoC6NoC1e();
        strategies.push_back({"static + AW", s});
    }
    {
        server::ServerConfig s = server::ServerConfig::awBaseline();
        s.turboEnabled = false;
        s.dispatch = server::DispatchPolicy::Packing;
        s.packageCStatesEnabled = true;
        strategies.push_back({"packing + AW + PC6", s});
    }

    analysis::TableWriter table({"strategy", "W/core", "pkg W",
                                 "avg lat (us)", "p99 lat (us)"});
    for (auto &strat : strategies) {
        server::ServerSim srv(strat.cfg, profile, qps);
        const auto r = srv.run(sim::fromSec(1.0),
                               sim::fromMs(100.0));
        table.addRow({strat.label,
                      analysis::cell("%.3f", r.avgCorePower),
                      analysis::cell("%.1f", r.packagePower),
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs)});
    }
    table.print();

    std::printf("\nManagement (packing) trades tail latency for "
                "deep-state residency; the C6A\narchitecture gets "
                "deeper savings with no tail damage, and the "
                "combination adds\npackage-level (uncore) savings "
                "on top.\n");
    return 0;
}
