/**
 * @file
 * Domain scenario: C-state transition anatomy. Prints the derived
 * entry/exit latency of every state across core frequencies and
 * cache dirtiness, then executes the C6A PMA state machine event by
 * event and dumps the phase trace -- the <100 ns round trip that is
 * the paper's headline mechanism.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "cstate/transition.hh"
#include "sim/event_queue.hh"

int
main()
{
    using namespace aw;

    core::AwCoreModel model;
    auto engine = model.makeTransitionEngine();

    // --- Latency vs frequency -----------------------------------
    std::printf("Derived C-state transition latencies "
                "(sw+hw, us)\n\n");
    analysis::TableWriter table({"state", "0.8 GHz", "2.2 GHz",
                                 "3.0 GHz"});
    const cstate::CStateId states[] = {
        cstate::CStateId::C1, cstate::CStateId::C1E,
        cstate::CStateId::C6A, cstate::CStateId::C6AE,
        cstate::CStateId::C6};
    for (const auto id : states) {
        std::vector<std::string> row{cstate::name(id)};
        for (const double ghz : {0.8, 2.2, 3.0}) {
            const auto lat =
                engine.latency(id, sim::Frequency::ghz(ghz));
            row.push_back(
                analysis::cell("%.2f", sim::toUs(lat.total())));
        }
        table.addRow(std::move(row));
    }
    table.print();

    // --- Flush cost vs dirtiness --------------------------------
    std::printf("\nC6 entry flush cost at 2.2 GHz vs dirty "
                "fraction\n\n");
    analysis::TableWriter flush({"dirty", "flush (us)"});
    for (const double dirty : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        model.caches().setDirtyFraction(dirty);
        flush.addRow({analysis::cell("%.0f%%", dirty * 100),
                      analysis::cell(
                          "%.1f", sim::toUs(model.caches().flushTime(
                                      sim::Frequency::ghz(2.2))))});
    }
    flush.print();

    // --- PMA state machine trace --------------------------------
    std::printf("\nC6A PMA flow, event by event (PMA @ 500 MHz)\n\n");
    sim::Simulator simr;
    auto &ctl = model.controller();
    bool idle_reached = false;
    ctl.runEntry(simr, [&]() { idle_reached = true; });
    simr.run();
    ctl.runExit(simr, [&]() {});
    simr.run();

    analysis::TableWriter trace({"phase", "start (ns)", "end (ns)",
                                 "duration (ns)"});
    for (const auto &rec : ctl.trace()) {
        trace.addRow({core::name(rec.phase),
                      analysis::cell("%.1f", sim::toNs(rec.start)),
                      analysis::cell("%.1f", sim::toNs(rec.end)),
                      analysis::cell("%.1f",
                                     sim::toNs(rec.end - rec.start))});
    }
    trace.print();

    std::printf("\nentry %.1f ns + exit %.1f ns = round trip "
                "%.1f ns (paper: <100 ns)\n",
                sim::toNs(ctl.entryLatency()),
                sim::toNs(ctl.exitLatency()),
                sim::toNs(ctl.roundTripLatency()));
    return idle_reached ? 0 : 1;
}
