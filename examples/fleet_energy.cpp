/**
 * @file
 * Fleet energy demo: an 8-server cluster serving a diurnal
 * Memcached load, comparing spread (round-robin) vs consolidating
 * (pack-first) request routing under the legacy C6 hierarchy and
 * under AgileWatts.
 *
 * The point the paper makes at single-server scale -- deep idle is
 * valuable but legacy C6 makes it expensive to use -- compounds at
 * fleet scale: routing decides how much idle exists and where,
 * while the idle-state architecture decides what it costs to
 * harvest. The run also converts the fleet-power gap into the
 * paper's Table 5 currency: $/year per 100K servers.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/fleet_energy
 */

#include <cstdio>

#include "analysis/cost_model.hh"
#include "analysis/table.hh"
#include "cluster/fleet.hh"
#include "workload/profiles.hh"

int
main()
{
    using namespace aw;

    const unsigned servers = 8;
    const double fleet_qps = 320e3; // 40 KQPS/server average
    const auto profile = workload::WorkloadProfile::memcached();

    // One simulated "day" compressed into a second: the offered
    // rate sweeps trough (20%) to peak (180%) of the average.
    const auto day =
        cluster::RateSchedule::sinusoidal(sim::fromSec(1.0), 0.8);

    std::printf("Fleet energy: %u servers, %s @ %.0f KQPS average, "
                "diurnal load\n\n",
                servers, profile.name().c_str(), fleet_qps / 1e3);

    struct Cell
    {
        const char *routing;
        const char *label;
        server::ServerConfig cfg;
        cluster::FleetResult result;
    };
    std::vector<Cell> cells = {
        {"round-robin", "tuned C6",
         server::ServerConfig::legacyC1C6(), {}},
        {"round-robin", "AW", server::ServerConfig::awC6aOnly(), {}},
        {"pack-first", "tuned C6",
         server::ServerConfig::legacyC1C6(), {}},
        {"pack-first", "AW", server::ServerConfig::awC6aOnly(), {}},
    };

    for (auto &cell : cells) {
        cluster::FleetConfig fc;
        fc.servers = servers;
        fc.server = cell.cfg;
        fc.server.idlePromotion = true;
        fc.routing = cell.routing;
        fc.schedule = day;
        cluster::FleetSim fleet(fc, profile, fleet_qps);
        // One full diurnal period measured.
        cell.result = fleet.run(sim::fromSec(1.0), sim::fromMs(100.0));
    }

    analysis::TableWriter table({"routing", "config", "fleet W",
                                 "mJ/req", "p99 (us)", "deep idle",
                                 "spare deep"});
    for (const auto &cell : cells) {
        const auto &r = cell.result;
        table.addRow({cell.routing, cell.label,
                      analysis::cell("%.1f", r.fleetPower),
                      analysis::cell("%.3f", r.energyPerRequestMj),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.1f%%", 100 * r.deepIdleShare),
                      analysis::cell("%.1f%%",
                                     100 * r.maxServerDeepShare)});
    }
    table.print();

    // Fleet-power delta in Table 5 currency.
    const double spread_c6 = cells[0].result.fleetPower / servers;
    const double packed_aw = cells[3].result.fleetPower / servers;
    const analysis::CostModel cost;
    const double yearly = cost.yearlySavingsUsd(spread_c6, packed_aw);
    std::printf("\npack-first + AW vs round-robin + tuned C6: "
                "%.1f W/server saved,\n~$%.1fM/year per 100K "
                "servers at the paper's Table 5 assumptions.\n",
                spread_c6 - packed_aw, yearly / 1e6);
    return 0;
}
