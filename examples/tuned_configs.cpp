/**
 * @file
 * Domain scenario: the "server vendor recommended configuration"
 * dilemma of Sec 7.2. Vendors suggest disabling deep C-states to
 * protect tail latency, at a power cost. This example sweeps a
 * Memcached load across the three tuned legacy configurations and
 * AgileWatts and prints latency vs power, showing that C6A gets the
 * best of both.
 */

#include <cstdio>
#include <vector>

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

int
main()
{
    using namespace aw;

    const auto profile = workload::WorkloadProfile::memcached();
    const double qps = 200e3;

    const std::vector<server::ServerConfig> configs = {
        server::ServerConfig::ntBaseline(),
        server::ServerConfig::ntNoC6(),
        server::ServerConfig::ntNoC6NoC1e(),
        server::ServerConfig::ntAwNoC6NoC1e(),
    };

    std::printf("Tuned configurations, %s @ %.0f KQPS\n\n",
                profile.name().c_str(), qps / 1e3);

    analysis::TableWriter table({"config", "avg lat (us)",
                                 "p99 lat (us)", "core power (W)",
                                 "pkg power (W)"});
    for (const auto &cfg : configs) {
        server::ServerSim srv(cfg, profile, qps);
        const auto r = srv.run();
        table.addRow({cfg.name,
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.3f", r.avgCorePower),
                      analysis::cell("%.1f", r.packagePower)});
    }
    table.print();

    std::printf("\nC6A should match the latency of the most "
                "aggressive tuning (No_C6,No_C1E)\nwhile drawing "
                "the least power of all configurations.\n");
    return 0;
}
