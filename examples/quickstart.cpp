/**
 * @file
 * Quickstart: simulate a Memcached-like service on a 10-core server
 * with the legacy C-state hierarchy and with AgileWatts, and compare
 * power and latency.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "analysis/power_model.hh"
#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

int
main()
{
    using namespace aw;

    const double qps = 100e3; // 100 KQPS offered load
    const auto profile = workload::WorkloadProfile::memcached();

    std::printf("AgileWatts quickstart: %s @ %.0f KQPS, 10 cores\n\n",
                profile.name().c_str(), qps / 1e3);

    // --- Baseline: C1/C1E/C6, Turbo on, P-states off ------------
    server::ServerSim baseline(server::ServerConfig::baseline(),
                               profile, qps);
    const auto base = baseline.run();

    // --- AgileWatts: C1->C6A, C1E->C6AE ------------------------
    server::ServerSim agile(server::ServerConfig::awBaseline(),
                            profile, qps);
    const auto aw_run = agile.run();

    analysis::TableWriter table({"metric", "baseline", "agilewatts"});
    table.addRow({"avg core power (W)",
                  analysis::cell("%.3f", base.avgCorePower),
                  analysis::cell("%.3f", aw_run.avgCorePower)});
    table.addRow({"package power (W)",
                  analysis::cell("%.1f", base.packagePower),
                  analysis::cell("%.1f", aw_run.packagePower)});
    table.addRow({"avg latency (us)",
                  analysis::cell("%.1f", base.avgLatencyUs),
                  analysis::cell("%.1f", aw_run.avgLatencyUs)});
    table.addRow({"p99 latency (us)",
                  analysis::cell("%.1f", base.p99LatencyUs),
                  analysis::cell("%.1f", aw_run.p99LatencyUs)});
    table.addRow({"C0 residency",
                  analysis::cell("%.1f%%",
                                 100 * base.residency.shareOf(
                                           cstate::CStateId::C0)),
                  analysis::cell("%.1f%%",
                                 100 * aw_run.residency.shareOf(
                                           cstate::CStateId::C0))});
    table.print();

    const double savings =
        1.0 - aw_run.avgCorePower / base.avgCorePower;
    std::printf("\nAgileWatts core power savings: %.1f%%\n",
                100.0 * savings);

    // The paper-style analytical estimate (Eq. 4) from the
    // baseline residencies alone:
    core::AwCoreModel aw_model;
    analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    std::printf("analytical estimate (Eq. 4):   %.1f%%\n",
                100.0 * model.awSavingsVsMeasured(
                            base.residency, base.avgCorePower));
    return 0;
}
